// Declarative experiment grids (the paper's tables are sweeps over
// {algorithm, layout, delay model, crash pattern, coin quality} × seeds).
//
// An ExperimentSpec names one value list per axis; expand() produces the
// cross-product as ExperimentCell values, each of which can mint the
// RunConfig of any of its seeds. Cells are plain data, independent, and
// seed-deterministic: cell `index` + run `k` always maps to the same
// RunConfig regardless of how (or on how many threads) the grid is executed.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster_layout.h"
#include "core/runner.h"
#include "net/delay_model.h"
#include "scenario/scenario.h"
#include "sim/crash.h"

namespace hyco {

/// One value of the delay axis: a label plus either a declarative
/// DelayConfig or a custom factory (for adversarial schedulers).
struct DelayAxis {
  std::string name = "uniform(50,150)";
  DelayConfig config = DelayConfig::uniform(50, 150);
  std::function<std::unique_ptr<DelayModel>()> factory;  ///< overrides config

  static DelayAxis of(std::string name, DelayConfig cfg);
  static DelayAxis adversarial(
      std::string name, std::function<std::unique_ptr<DelayModel>()> factory);
};

/// One value of the crash axis: a label plus a plan generator. The generator
/// takes the cell's layout so one axis value can apply to every layout in
/// the grid (crash plans are sized to n).
struct CrashAxis {
  std::string name = "none";
  std::function<CrashPlan(const ClusterLayout&)> make;  ///< null = no crashes

  static CrashAxis none();
  static CrashAxis of(std::string name, CrashPlan plan);
  static CrashAxis of(std::string name,
                      std::function<CrashPlan(const ClusterLayout&)> make);
};

/// One value of the scenario axis: a label plus the adversarial scenario
/// applied to every run of the cell (partitions, link faults, recoveries,
/// coin attack — src/scenario/scenario.h). Declarative specs are resolved
/// against each cell's layout, so one axis value rides every (n, m).
struct ScenarioAxis {
  std::string name = "none";
  ScenarioConfig config;

  static ScenarioAxis none();
  static ScenarioAxis of(std::string name, ScenarioConfig config);
  /// Labels the axis with the config's own compact label().
  static ScenarioAxis of(ScenarioConfig config);
};

/// One value of the service-workload axis: when enabled, the cell's runs
/// execute the replicated service (run_service) — closed-loop clients
/// driving batched total-order broadcast — instead of single-instance
/// consensus. The default `none()` keeps the grid a pure consensus sweep
/// (labels, fingerprints, and artifacts byte-identical to pre-service
/// builds).
struct ServiceAxis {
  std::string name = "none";
  bool enabled = false;
  std::uint64_t clients = 0;
  std::uint64_t ops_per_client = 1;
  std::size_t batch_max = 64;
  SimTime batch_delay = 50'000;  ///< ns; 0 = flush every op
  double load = 0.0;             ///< offered load, ops/sec; 0 = no think time

  static ServiceAxis none();
  /// Labels itself "c<clients>x<ops> b<batch_max> d<batch_delay> l<load>".
  static ServiceAxis of(std::uint64_t clients, std::uint64_t ops_per_client,
                        std::size_t batch_max, SimTime batch_delay,
                        double load);
};

struct ServiceRunConfig;

/// How proposals are assigned across processes.
enum class InputKind : std::uint8_t {
  Split,    ///< process i proposes i % 2 — the adversarially divided start
  AllZero,  ///< unanimous 0
  AllOne,   ///< unanimous 1
};

const char* to_cstring(InputKind k);

struct ExperimentCell;

/// A full parameter grid. Every axis must be non-empty (expand() checks);
/// the defaults make single-axis sweeps one-liners.
struct ExperimentSpec {
  std::string name = "experiment";

  std::vector<Algorithm> algorithms{Algorithm::HybridLocalCoin};
  std::vector<ClusterLayout> layouts;
  std::vector<DelayAxis> delays{DelayAxis{}};
  std::vector<CrashAxis> crashes{CrashAxis::none()};
  std::vector<ScenarioAxis> scenarios{ScenarioAxis{}};
  std::vector<double> coin_epsilons{0.0};
  std::vector<ServiceAxis> services{ServiceAxis{}};

  /// Seeds per cell. 64-bit end to end: multi-million-run grids (and the
  /// cells × runs product) must not wrap 32-bit counters anywhere.
  std::uint64_t runs_per_cell = 40;
  std::uint64_t base_seed = 1;
  InputKind inputs = InputKind::Split;
  Round max_rounds = 5000;
  SimTime start_jitter = 50;
  int adversary_bit = 0;

  /// Collect per-phase latency timings on every run (RunConfig::collect_obs).
  /// Out of band: results and emitted artifacts stay byte-identical apart
  /// from the opt-in observability columns themselves.
  bool collect_obs = false;

  /// Cross-product size (cells, not runs).
  [[nodiscard]] std::size_t cell_count() const;

  /// Total run count (cell_count() × runs_per_cell), overflow-checked.
  [[nodiscard]] std::uint64_t total_runs() const;

  /// Expands the grid row-major in axis declaration order: algorithms ▸
  /// layouts ▸ delays ▸ crashes ▸ scenarios ▸ coin_epsilons ▸ services.
  /// Throws ContractViolation if any axis is empty or runs_per_cell < 1.
  [[nodiscard]] std::vector<ExperimentCell> expand() const;
};

/// One point of the grid; knows how to build the RunConfig of each seed.
struct ExperimentCell {
  std::size_t index = 0;  ///< position in the row-major expansion
  Algorithm alg = Algorithm::HybridLocalCoin;
  ClusterLayout layout;
  DelayAxis delay;
  CrashAxis crash;
  ScenarioAxis scenario;
  double coin_epsilon = 0.0;
  ServiceAxis service;

  // Scalars snapshotted from the spec so a cell is self-contained.
  std::uint64_t runs = 0;
  std::uint64_t base_seed = 1;
  InputKind inputs = InputKind::Split;
  Round max_rounds = 5000;
  SimTime start_jitter = 50;
  int adversary_bit = 0;
  bool collect_obs = false;

  explicit ExperimentCell(ClusterLayout l) : layout(std::move(l)) {}

  /// The seed of run k — a pure function of (base_seed, index, k), so
  /// results are replayable from the aggregate report alone.
  [[nodiscard]] std::uint64_t seed_for(std::uint64_t run) const;

  /// Mints the full RunConfig of run k (0 <= k < runs).
  [[nodiscard]] RunConfig run_config(std::uint64_t run) const;

  /// Mints the ServiceRunConfig of run k; service.enabled must hold.
  [[nodiscard]] ServiceRunConfig service_run_config(std::uint64_t run) const;

  /// "hybrid-CC n=16 m=4 delay=uniform(50,150) crash=none scn=none eps=0" —
  /// stable across runs; used in tables, CSV, and JSON. Service cells
  /// append " svc=<name>" (plain consensus labels are unchanged, keeping
  /// old grid fingerprints and checkpoints valid).
  [[nodiscard]] std::string label() const;
};

}  // namespace hyco
