// Failing-seed replay: any run that did not reach success() can be re-run
// bit-exactly from its (cell, run) coordinates — seeds are pure functions
// of the spec — this time with tracing enabled, so a failed cell in a
// thousand-run sweep turns into a readable event trace without re-running
// the sweep.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "exp/sink.h"

namespace hyco {

/// One replayed failure with its full event trace.
struct ReplayReport {
  std::size_t cell_index = 0;
  std::string cell_label;
  std::uint64_t run = 0;
  std::uint64_t seed = 0;
  bool terminated = false;
  bool safe_ok = true;
  std::vector<std::string> violations;
  std::string trace;  ///< RunResult::trace_dump of the traced re-run
};

/// Re-runs every failure captured in each cell's bounded worst-seed ring
/// with enable_trace = true, up to `max_replays` total (traces are large;
/// sweeps with expected non-termination — e.g. dead covering sets — can
/// fail thousands of runs). Works under streaming execution: the ring
/// survives without any retained per-run records.
[[nodiscard]] std::vector<ReplayReport> replay_failures(
    const std::vector<CellResult>& results, std::size_t max_replays = 8);

/// Human-readable dump: one header + trace block per report.
void dump_replays(std::ostream& out, const std::vector<ReplayReport>& reports);

}  // namespace hyco
