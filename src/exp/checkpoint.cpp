#include "exp/checkpoint.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include "exp/report.h"
#include "util/assert.h"
#include "util/rng.h"

namespace hyco {

namespace {

constexpr const char* kMagic = "hyco-checkpoint";
constexpr const char* kVersion = "v1";

// Sanity ceilings on file-supplied sizes: a corrupted size field must make
// the loader drop the block (the documented contract), not drive a
// multi-gigabyte allocation or an abort. Far above any configured value.
constexpr std::size_t kMaxReservoirCapacity = std::size_t{1} << 22;
constexpr std::size_t kMaxHistogramBuckets = std::size_t{1} << 16;
constexpr std::size_t kMaxFailureCapacity = std::size_t{1} << 22;

using U128 = ExactMoments::U128;

std::string u128_to_string(U128 v) {
  if (v == 0) return "0";
  std::string digits;
  while (v > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<unsigned>(v % 10)));
    v /= 10;
  }
  return std::string(digits.rbegin(), digits.rend());
}

bool parse_u128(const std::string& s, U128& out) {
  if (s.empty() || s.size() > 39) return false;
  U128 v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const U128 prev = v;
    v = v * 10 + static_cast<unsigned>(c - '0');
    if (v < prev) return false;  // wrapped
  }
  out = v;
  return true;
}

std::uint64_t fnv1a(const std::string& s, std::uint64_t h = 0xCBF29CE484222325) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3;
  }
  return h;
}

void write_metric(std::ostream& out, const char* name,
                  const MetricStats& m) {
  const ExactMoments& mo = m.moments();
  out << "m " << name << ' ' << mo.count() << ' '
      << u128_to_string(mo.raw_sum()) << ' '
      << u128_to_string(mo.raw_sumsq()) << ' ' << mo.raw_min() << ' '
      << mo.raw_max() << '\n';
  const ReservoirSample& res = m.reservoir();
  out << "r " << name << ' ' << res.capacity() << ' ' << res.size();
  for (const auto& e : res.entries()) {
    out << ' ' << e.priority << ':' << format_number(e.value);
  }
  out << '\n';
}

bool parse_metric_lines(std::istringstream& mline, std::istringstream& rline,
                        MetricStats& out, std::size_t reservoir_capacity) {
  std::uint64_t count = 0, mn = 0, mx = 0;
  std::string sum_s, sumsq_s;
  if (!(mline >> count >> sum_s >> sumsq_s >> mn >> mx)) return false;
  U128 sum = 0, sumsq = 0;
  if (!parse_u128(sum_s, sum) || !parse_u128(sumsq_s, sumsq)) return false;

  std::size_t cap = 0, n = 0;
  if (!(rline >> cap >> n)) return false;
  if (cap != reservoir_capacity || n > cap) return false;
  ReservoirSample res(cap);
  for (std::size_t i = 0; i < n; ++i) {
    std::string entry;
    if (!(rline >> entry)) return false;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) return false;
    const std::string prio_s = entry.substr(0, colon);
    char* end = nullptr;
    const std::uint64_t prio = std::strtoull(prio_s.c_str(), &end, 10);
    if (end == prio_s.c_str() || *end != '\0') return false;
    const std::string val_s = entry.substr(colon + 1);
    end = nullptr;
    const double val = std::strtod(val_s.c_str(), &end);
    if (end == val_s.c_str() || *end != '\0') return false;
    res.add(prio, val);
  }
  out = MetricStats(ExactMoments::from_raw(count, sum, sumsq, mn, mx),
                    std::move(res));
  return true;
}

}  // namespace

std::uint64_t grid_fingerprint(const std::vector<ExperimentCell>& cells,
                               std::size_t reservoir_capacity,
                               std::size_t failure_capacity) {
  std::uint64_t h = mix64(0x4859C0, cells.size());
  h = mix64(h, reservoir_capacity);
  h = mix64(h, failure_capacity);
  for (const ExperimentCell& c : cells) {
    h = mix64(h, c.index);
    h = mix64(h, fnv1a(c.label()));
    h = mix64(h, c.runs);
    h = mix64(h, c.base_seed);
    h = mix64(h, static_cast<std::uint64_t>(c.max_rounds));
    h = mix64(h, static_cast<std::uint64_t>(c.start_jitter));
    h = mix64(h, static_cast<std::uint64_t>(c.inputs));
    h = mix64(h, static_cast<std::uint64_t>(c.adversary_bit));
  }
  return h;
}

void write_checkpoint_header(std::ostream& out, std::uint64_t fingerprint) {
  out << kMagic << ' ' << kVersion << " grid " << fingerprint << '\n';
  out.flush();
}

void append_checkpoint_cell(std::ostream& out, std::uint64_t cell_index,
                            const CellAccumulator& acc) {
  out << "cell " << cell_index << ' ' << acc.runs << ' ' << acc.terminated
      << ' ' << acc.violations << '\n';
  write_metric(out, "rounds", acc.rounds);
  write_metric(out, "msgs", acc.msgs);
  write_metric(out, "shm", acc.shm_proposals);
  write_metric(out, "objects", acc.objects);
  write_metric(out, "dtime", acc.decision_time);
  out << "h " << format_number(acc.round_hist.lo()) << ' '
      << format_number(acc.round_hist.hi()) << ' '
      << acc.round_hist.bucket_count();
  for (std::size_t i = 0; i < acc.round_hist.bucket_count(); ++i) {
    out << ' ' << acc.round_hist.bucket(i);
  }
  out << '\n';
  out << "f " << acc.failure_cap << ' ' << acc.failures.size();
  for (const RunRecord& r : acc.failures) {
    out << ' ' << r.run << ',' << r.seed << ',' << (r.terminated ? 1 : 0)
        << ',' << (r.safe_ok ? 1 : 0) << ',' << (r.success ? 1 : 0) << ','
        << r.rounds << ',' << r.decision_time << ',' << r.msgs << ','
        << r.shm_proposals << ',' << r.consensus_objects << ',' << r.events
        << ',' << r.crashed;
  }
  out << '\n';
  out << "done " << cell_index << '\n';
  out.flush();
}

std::map<std::uint64_t, CellAccumulator> load_checkpoint(
    std::istream& in, std::uint64_t expected_fingerprint) {
  std::string line;
  // Header: skip blank/garbage prefix lines (append-mode guard newlines).
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string magic, version, grid_kw;
    std::uint64_t fp = 0;
    if (ls >> magic >> version >> grid_kw >> fp && magic == kMagic &&
        version == kVersion && grid_kw == "grid") {
      HYCO_CHECK_MSG(fp == expected_fingerprint,
                     "checkpoint belongs to a different grid (fingerprint "
                         << fp << ", expected " << expected_fingerprint
                         << ") — refusing to resume");
      have_header = true;
      break;
    }
    HYCO_CHECK_MSG(false, "not a hyco checkpoint (bad header line)");
  }
  HYCO_CHECK_MSG(have_header, "checkpoint stream is empty");

  std::map<std::uint64_t, CellAccumulator> cells;
  // Blocks. A block is accepted only when fully parsed through its
  // "done <index>" trailer; anything malformed drops the current block and
  // resyncs on the next "cell" line. A bail-out may have just read the
  // *next* block's "cell" header (e.g. a partial block cut before its
  // trailer, appended to by a later session) — `carry` re-processes that
  // line instead of discarding the complete block that follows it.
  const auto is_cell_header = [](const std::string& l) {
    std::istringstream probe(l);
    std::string k;
    return (probe >> k) && k == "cell";
  };
  bool carry = false;
  for (;;) {
    if (!carry && !std::getline(in, line)) break;
    carry = false;
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw) || kw != "cell") continue;
    std::uint64_t index = 0, runs = 0, term = 0, viol = 0;
    if (!(ls >> index >> runs >> term >> viol)) continue;

    // The five metric (m+r line pairs), then h, f, done — read eagerly;
    // bail to resync on any mismatch.
    const auto next_line = [&](const char* want, std::istringstream& out_ls,
                               std::string* tag = nullptr) {
      if (!std::getline(in, line)) return false;
      out_ls.clear();
      out_ls.str(line);
      std::string k;
      if (!(out_ls >> k) || k != want) return false;
      if (tag != nullptr && !(out_ls >> *tag)) return false;
      return true;
    };

    // The reservoir capacity is read off the first metric's r-line and the
    // failure cap off the f-line, so metrics parse into temporaries and the
    // accumulator is assembled at the end.
    std::size_t rcap = 0;
    bool ok = true;
    const char* names[5] = {"rounds", "msgs", "shm", "objects", "dtime"};
    MetricStats parsed[5] = {MetricStats(1), MetricStats(1), MetricStats(1),
                             MetricStats(1), MetricStats(1)};
    for (int i = 0; i < 5 && ok; ++i) {
      std::istringstream mls, rls;
      std::string mtag, rtag;
      ok = next_line("m", mls, &mtag) && mtag == names[i] &&
           next_line("r", rls, &rtag) && rtag == names[i];
      if (!ok) break;
      if (i == 0) {
        // Reservoir capacity is the token after the tag.
        std::istringstream probe(rls.str());
        std::string k, t;
        probe >> k >> t >> rcap;
        ok = rcap >= 1 && rcap <= kMaxReservoirCapacity;
        if (!ok) break;
      }
      ok = parse_metric_lines(mls, rls, parsed[i], rcap);
    }
    if (!ok) {
      carry = is_cell_header(line);
      continue;
    }

    std::istringstream hls;
    if (!next_line("h", hls)) {
      carry = is_cell_header(line);
      continue;
    }
    double lo = 0.0, hi = 0.0;
    std::size_t buckets = 0;
    if (!(hls >> lo >> hi >> buckets) || buckets == 0 ||
        buckets > kMaxHistogramBuckets || !std::isfinite(lo) ||
        !std::isfinite(hi) || !(hi > lo)) {
      continue;
    }
    std::vector<std::uint64_t> counts(buckets, 0);
    bool hist_ok = true;
    for (std::size_t i = 0; i < buckets; ++i) {
      if (!(hls >> counts[i])) {
        hist_ok = false;
        break;
      }
    }
    if (!hist_ok) continue;

    std::istringstream fls;
    if (!next_line("f", fls)) {
      carry = is_cell_header(line);
      continue;
    }
    std::size_t fcap = 0, fcount = 0;
    if (!(fls >> fcap >> fcount) || fcount > fcap ||
        fcap > kMaxFailureCapacity) {
      continue;
    }
    std::vector<RunRecord> fails;
    bool fails_ok = true;
    for (std::size_t i = 0; i < fcount; ++i) {
      std::string tok;
      if (!(fls >> tok)) {
        fails_ok = false;
        break;
      }
      RunRecord r;
      int t = 0, s = 0, su = 0;
      std::istringstream ts(tok);
      const auto eat = [&](auto& field) {
        if (!(ts >> field)) return false;
        if (ts.peek() == ',') ts.get();
        return true;
      };
      if (!(eat(r.run) && eat(r.seed) && eat(t) && eat(s) && eat(su) &&
            eat(r.rounds) && eat(r.decision_time) && eat(r.msgs) &&
            eat(r.shm_proposals) && eat(r.consensus_objects) &&
            eat(r.events) && eat(r.crashed))) {
        fails_ok = false;
        break;
      }
      r.terminated = t != 0;
      r.safe_ok = s != 0;
      r.success = su != 0;
      fails.push_back(r);
    }
    if (!fails_ok) continue;

    std::istringstream dls;
    if (!std::getline(in, line)) break;
    dls.str(line);
    std::string done_kw;
    std::uint64_t done_idx = 0;
    if (!(dls >> done_kw >> done_idx) || done_kw != "done" ||
        done_idx != index) {
      carry = is_cell_header(line);
      continue;
    }

    CellAccumulator built(rcap, fcap);
    built.runs = runs;
    built.terminated = term;
    built.violations = viol;
    built.rounds = parsed[0];
    built.msgs = parsed[1];
    built.shm_proposals = parsed[2];
    built.objects = parsed[3];
    built.decision_time = parsed[4];
    built.round_hist = Histogram::from_counts(lo, hi, std::move(counts));
    built.failures = std::move(fails);
    built.finalize();
    cells.insert_or_assign(index, std::move(built));
  }
  return cells;
}

}  // namespace hyco
