#include "exp/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "exp/report.h"
#include "obs/metrics.h"
#include "util/assert.h"
#include "util/rng.h"

namespace hyco {

namespace {

constexpr const char* kMagic = "hyco-checkpoint";
constexpr const char* kVersion = "v1";

// Sanity ceilings on file-supplied sizes: a corrupted size field must make
// the loader drop the block (the documented contract), not drive a
// multi-gigabyte allocation or an abort. Far above any configured value.
constexpr std::size_t kMaxReservoirCapacity = std::size_t{1} << 22;
constexpr std::size_t kMaxHistogramBuckets = std::size_t{1} << 16;
constexpr std::size_t kMaxFailureCapacity = std::size_t{1} << 22;

using U128 = ExactMoments::U128;

std::string u128_to_string(U128 v) {
  if (v == 0) return "0";
  std::string digits;
  while (v > 0) {
    digits.push_back(static_cast<char>('0' + static_cast<unsigned>(v % 10)));
    v /= 10;
  }
  return std::string(digits.rbegin(), digits.rend());
}

bool parse_u128(const std::string& s, U128& out) {
  if (s.empty() || s.size() > 39) return false;
  U128 v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const U128 prev = v;
    v = v * 10 + static_cast<unsigned>(c - '0');
    if (v < prev) return false;  // wrapped
  }
  out = v;
  return true;
}

std::uint64_t fnv1a(const std::string& s, std::uint64_t h = 0xCBF29CE484222325) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3;
  }
  return h;
}

void write_metric(std::ostream& out, const char* name, const MetricStats& m,
                  const char* prefix = "") {
  const ExactMoments& mo = m.moments();
  out << prefix << "m " << name << ' ' << mo.count() << ' '
      << u128_to_string(mo.raw_sum()) << ' '
      << u128_to_string(mo.raw_sumsq()) << ' ' << mo.raw_min() << ' '
      << mo.raw_max() << '\n';
  const ReservoirSample& res = m.reservoir();
  out << prefix << "r " << name << ' ' << res.capacity() << ' ' << res.size();
  for (const auto& e : res.entries()) {
    out << ' ' << e.priority << ':' << format_number(e.value);
  }
  out << '\n';
}

bool parse_metric_lines(std::istringstream& mline, std::istringstream& rline,
                        MetricStats& out, std::size_t reservoir_capacity) {
  std::uint64_t count = 0, mn = 0, mx = 0;
  std::string sum_s, sumsq_s;
  if (!(mline >> count >> sum_s >> sumsq_s >> mn >> mx)) return false;
  U128 sum = 0, sumsq = 0;
  if (!parse_u128(sum_s, sum) || !parse_u128(sumsq_s, sumsq)) return false;

  std::size_t cap = 0, n = 0;
  if (!(rline >> cap >> n)) return false;
  if (cap != reservoir_capacity || n > cap) return false;
  ReservoirSample res(cap);
  for (std::size_t i = 0; i < n; ++i) {
    std::string entry;
    if (!(rline >> entry)) return false;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) return false;
    const std::string prio_s = entry.substr(0, colon);
    char* end = nullptr;
    const std::uint64_t prio = std::strtoull(prio_s.c_str(), &end, 10);
    if (end == prio_s.c_str() || *end != '\0') return false;
    const std::string val_s = entry.substr(colon + 1);
    end = nullptr;
    const double val = std::strtod(val_s.c_str(), &end);
    if (end == val_s.c_str() || *end != '\0') return false;
    res.add(prio, val);
  }
  out = MetricStats(ExactMoments::from_raw(count, sum, sumsq, mn, mx),
                    std::move(res));
  return true;
}

/// True when `l` opens a new block (the resync anchors of the loader).
bool is_block_header(const std::string& l) {
  std::istringstream probe(l);
  std::string k;
  return (probe >> k) && (k == "cell" || k == "chunk");
}

}  // namespace

std::uint64_t grid_fingerprint(const std::vector<ExperimentCell>& cells,
                               std::size_t reservoir_capacity,
                               std::size_t failure_capacity) {
  std::uint64_t h = mix64(0x4859C0, cells.size());
  h = mix64(h, reservoir_capacity);
  h = mix64(h, failure_capacity);
  for (const ExperimentCell& c : cells) {
    h = mix64(h, c.index);
    h = mix64(h, fnv1a(c.label()));
    h = mix64(h, c.runs);
    h = mix64(h, c.base_seed);
    h = mix64(h, static_cast<std::uint64_t>(c.max_rounds));
    h = mix64(h, static_cast<std::uint64_t>(c.start_jitter));
    h = mix64(h, static_cast<std::uint64_t>(c.inputs));
    h = mix64(h, static_cast<std::uint64_t>(c.adversary_bit));
    // Mixed only when set: metrics-off grids keep their pre-observability
    // fingerprints, so existing checkpoints stay resumable.
    if (c.collect_obs) h = mix64(h, 0x0B5E);
  }
  return h;
}

void write_checkpoint_header(std::ostream& out, std::uint64_t fingerprint) {
  out << kMagic << ' ' << kVersion << " grid " << fingerprint << '\n';
  out.flush();
}

void write_accumulator_state(std::ostream& out, const CellAccumulator& acc) {
  write_metric(out, "rounds", acc.rounds);
  write_metric(out, "msgs", acc.msgs);
  write_metric(out, "shm", acc.shm_proposals);
  write_metric(out, "objects", acc.objects);
  write_metric(out, "dtime", acc.decision_time);
  out << "h " << format_number(acc.round_hist.lo()) << ' '
      << format_number(acc.round_hist.hi()) << ' '
      << acc.round_hist.bucket_count();
  for (std::size_t i = 0; i < acc.round_hist.bucket_count(); ++i) {
    out << ' ' << acc.round_hist.bucket(i);
  }
  out << '\n';
  out << "f " << acc.failure_cap << ' ' << acc.failures.size();
  for (const RunRecord& r : acc.failures) {
    out << ' ' << r.run << ',' << r.seed << ',' << (r.terminated ? 1 : 0)
        << ',' << (r.safe_ok ? 1 : 0) << ',' << (r.success ? 1 : 0) << ','
        << r.rounds << ',' << r.decision_time << ',' << r.msgs << ','
        << r.shm_proposals << ',' << r.consensus_objects << ',' << r.events
        << ',' << r.crashed;
  }
  out << '\n';
  // Observability metrics, one "o" line per id in enum order; latency ids
  // append their log-histogram buckets after an "h" marker. Readers consume
  // these greedily after the "f" line, so pre-observability checkpoints
  // (no "o" lines) still load.
  for (std::size_t i = 0; i < obs::kObsIdCount; ++i) {
    const auto id = static_cast<obs::ObsId>(i);
    const ExactMoments& mo = acc.obs.moments(id);
    out << "o " << obs::obs_id_name(id) << ' ' << mo.count() << ' '
        << u128_to_string(mo.raw_sum()) << ' '
        << u128_to_string(mo.raw_sumsq()) << ' ' << mo.raw_min() << ' '
        << mo.raw_max();
    if (obs::obs_id_is_latency(id)) {
      const obs::LogHistogram& hist = acc.obs.histogram(id);
      out << " h";
      for (std::size_t b = 0; b < obs::LogHistogram::kBuckets; ++b) {
        out << ' ' << hist.bucket(b);
      }
    }
    out << '\n';
  }
  // Service-workload block ("s ..." lines), written only when the cell ran
  // the service — plain consensus checkpoints stay byte-identical to
  // pre-service builds, and readers consume the block greedily like the
  // "o" lines, so both directions of version skew parse.
  if (acc.svc.active_runs > 0) {
    out << "s a " << acc.svc.active_runs << '\n';
    write_metric(out, "ops", acc.svc.ops, "s ");
    write_metric(out, "rate", acc.svc.rate, "s ");
    write_metric(out, "batches", acc.svc.batches, "s ");
    write_metric(out, "slots", acc.svc.slots, "s ");
    const ExactMoments& lat = acc.svc.latency;
    out << "s l " << lat.count() << ' ' << u128_to_string(lat.raw_sum())
        << ' ' << u128_to_string(lat.raw_sumsq()) << ' ' << lat.raw_min()
        << ' ' << lat.raw_max() << '\n';
    out << "s h";
    for (std::size_t b = 0; b < obs::LogHistogram::kBuckets; ++b) {
      out << ' ' << acc.svc.latency_hist.bucket(b);
    }
    out << '\n';
    // Latency-attribution components, name-keyed moments ("s c") plus
    // histogram ("s ch") lines. Newer-writer lines a reader does not know
    // are skipped, so the pairs are append-only like the "o" block.
    const struct {
      const char* name;
      const ExactMoments* mo;
      const obs::LogHistogram* hist;
    } comps[3] = {
        {"bwait", &acc.svc.batch_wait, &acc.svc.batch_wait_hist},
        {"qwait", &acc.svc.seq_wait, &acc.svc.seq_wait_hist},
        {"cons", &acc.svc.consensus, &acc.svc.consensus_hist},
    };
    for (const auto& c : comps) {
      out << "s c " << c.name << ' ' << c.mo->count() << ' '
          << u128_to_string(c.mo->raw_sum()) << ' '
          << u128_to_string(c.mo->raw_sumsq()) << ' ' << c.mo->raw_min()
          << ' ' << c.mo->raw_max() << '\n';
      out << "s ch " << c.name;
      for (std::size_t b = 0; b < obs::LogHistogram::kBuckets; ++b) {
        out << ' ' << c.hist->bucket(b);
      }
      out << '\n';
    }
  }
}

void append_checkpoint_cell(std::ostream& out, std::uint64_t cell_index,
                            const CellAccumulator& acc) {
  out << "cell " << cell_index << ' ' << acc.runs << ' ' << acc.terminated
      << ' ' << acc.violations << '\n';
  write_accumulator_state(out, acc);
  out << "done " << cell_index << '\n';
  out.flush();
}

void append_checkpoint_chunk(std::ostream& out, std::uint64_t cell_index,
                             std::uint64_t begin, std::uint64_t end,
                             const CellAccumulator& acc) {
  out << "chunk " << cell_index << ' ' << begin << ' ' << end << ' '
      << acc.runs << ' ' << acc.terminated << ' ' << acc.violations << '\n';
  write_accumulator_state(out, acc);
  out << "done " << cell_index << ' ' << begin << ' ' << end << '\n';
  out.flush();
}

bool read_accumulator_state(std::istream& in, CellAccumulator& out,
                            std::string* stop_line) {
  std::string line;
  if (stop_line != nullptr) stop_line->clear();
  // Reads the next line and checks its keyword (and tag when asked); stores
  // the line in `line` so a mismatch can be handed back for resync.
  const auto next_line = [&](const char* want, std::istringstream& out_ls,
                             std::string* tag = nullptr) {
    if (!std::getline(in, line)) {
      line.clear();
      return false;
    }
    out_ls.clear();
    out_ls.str(line);
    std::string k;
    if (!(out_ls >> k) || k != want) return false;
    if (tag != nullptr && !(out_ls >> *tag)) return false;
    return true;
  };
  const auto bail = [&] {
    if (stop_line != nullptr) *stop_line = line;
    return false;
  };

  // The reservoir capacity is read off the first metric's r-line and the
  // failure cap off the f-line, so metrics parse into temporaries and the
  // accumulator is assembled at the end.
  std::size_t rcap = 0;
  const char* names[5] = {"rounds", "msgs", "shm", "objects", "dtime"};
  MetricStats parsed[5] = {MetricStats(1), MetricStats(1), MetricStats(1),
                           MetricStats(1), MetricStats(1)};
  for (int i = 0; i < 5; ++i) {
    std::istringstream mls, rls;
    std::string mtag, rtag;
    if (!(next_line("m", mls, &mtag) && mtag == names[i] &&
          next_line("r", rls, &rtag) && rtag == names[i])) {
      return bail();
    }
    if (i == 0) {
      // Reservoir capacity is the token after the tag.
      std::istringstream probe(rls.str());
      std::string k, t;
      probe >> k >> t >> rcap;
      if (rcap < 1 || rcap > kMaxReservoirCapacity) return bail();
    }
    if (!parse_metric_lines(mls, rls, parsed[i], rcap)) return bail();
  }

  std::istringstream hls;
  if (!next_line("h", hls)) return bail();
  double lo = 0.0, hi = 0.0;
  std::size_t buckets = 0;
  if (!(hls >> lo >> hi >> buckets) || buckets == 0 ||
      buckets > kMaxHistogramBuckets || !std::isfinite(lo) ||
      !std::isfinite(hi) || !(hi > lo)) {
    return bail();
  }
  std::vector<std::uint64_t> counts(buckets, 0);
  for (std::size_t i = 0; i < buckets; ++i) {
    if (!(hls >> counts[i])) return bail();
  }

  std::istringstream fls;
  if (!next_line("f", fls)) return bail();
  std::size_t fcap = 0, fcount = 0;
  if (!(fls >> fcap >> fcount) || fcount > fcap ||
      fcap > kMaxFailureCapacity) {
    return bail();
  }
  std::vector<RunRecord> fails;
  for (std::size_t i = 0; i < fcount; ++i) {
    std::string tok;
    if (!(fls >> tok)) return bail();
    RunRecord r;
    int t = 0, s = 0, su = 0;
    std::istringstream ts(tok);
    const auto eat = [&](auto& field) {
      if (!(ts >> field)) return false;
      if (ts.peek() == ',') ts.get();
      return true;
    };
    if (!(eat(r.run) && eat(r.seed) && eat(t) && eat(s) && eat(su) &&
          eat(r.rounds) && eat(r.decision_time) && eat(r.msgs) &&
          eat(r.shm_proposals) && eat(r.consensus_objects) &&
          eat(r.events) && eat(r.crashed))) {
      return bail();
    }
    r.terminated = t != 0;
    r.safe_ok = s != 0;
    r.success = su != 0;
    fails.push_back(r);
  }

  // Optional observability lines ("o <name> <count> <sum> <sumsq> <min>
  // <max> [h <buckets>]") — absent in pre-observability checkpoints.
  // Unknown metric names (a newer writer's appended ids) are skipped.
  obs::ObsAccumulator obs_parsed;
  while (in.peek() == 'o') {
    std::istringstream ols;
    std::string name;
    if (!next_line("o", ols, &name)) return bail();
    std::uint64_t count = 0, omin = 0, omax = 0;
    std::string sum_s, sumsq_s;
    if (!(ols >> count >> sum_s >> sumsq_s >> omin >> omax)) return bail();
    U128 sum = 0, sumsq = 0;
    if (!parse_u128(sum_s, sum) || !parse_u128(sumsq_s, sumsq)) return bail();
    std::string marker;
    std::array<std::uint64_t, obs::LogHistogram::kBuckets> hcounts{};
    bool have_hist = false;
    if (ols >> marker) {
      if (marker != "h") return bail();
      for (auto& c : hcounts) {
        if (!(ols >> c)) return bail();
      }
      have_hist = true;
    }
    for (std::size_t i = 0; i < obs::kObsIdCount; ++i) {
      const auto id = static_cast<obs::ObsId>(i);
      if (name != obs::obs_id_name(id)) continue;
      obs_parsed.moments(id) =
          ExactMoments::from_raw(count, sum, sumsq, omin, omax);
      if (obs::obs_id_is_latency(id)) {
        if (!have_hist) return bail();
        obs_parsed.histogram(id) = obs::LogHistogram::from_counts(hcounts);
      }
      break;
    }
  }

  // Optional service block ("s ..." lines) — present only for cells that
  // ran the replicated service. Fixed line order: a, m/r × {ops, rate,
  // batches, slots}, l, h.
  std::uint64_t svc_active = 0;
  MetricStats svc_parsed[4] = {MetricStats(1), MetricStats(1), MetricStats(1),
                               MetricStats(1)};
  ExactMoments svc_latency;
  std::array<std::uint64_t, obs::LogHistogram::kBuckets> svc_hist{};
  ExactMoments svc_comp[3];
  std::array<std::uint64_t, obs::LogHistogram::kBuckets> svc_comp_hist[3] = {};
  if (in.peek() == 's') {
    const auto next_svc = [&](const char* want, std::istringstream& out_ls,
                              std::string* tag = nullptr) {
      if (!std::getline(in, line)) {
        line.clear();
        return false;
      }
      out_ls.clear();
      out_ls.str(line);
      std::string s0, s1;
      if (!(out_ls >> s0 >> s1) || s0 != "s" || s1 != want) return false;
      if (tag != nullptr && !(out_ls >> *tag)) return false;
      return true;
    };
    std::istringstream als;
    if (!next_svc("a", als) || !(als >> svc_active) || svc_active == 0) {
      return bail();
    }
    const char* snames[4] = {"ops", "rate", "batches", "slots"};
    for (int i = 0; i < 4; ++i) {
      std::istringstream mls, rls;
      std::string mtag, rtag;
      if (!(next_svc("m", mls, &mtag) && mtag == snames[i] &&
            next_svc("r", rls, &rtag) && rtag == snames[i])) {
        return bail();
      }
      if (!parse_metric_lines(mls, rls, svc_parsed[i], rcap)) return bail();
    }
    std::istringstream lls;
    if (!next_svc("l", lls)) return bail();
    std::uint64_t lcount = 0, lmin = 0, lmax = 0;
    std::string lsum_s, lsumsq_s;
    if (!(lls >> lcount >> lsum_s >> lsumsq_s >> lmin >> lmax)) return bail();
    U128 lsum = 0, lsumsq = 0;
    if (!parse_u128(lsum_s, lsum) || !parse_u128(lsumsq_s, lsumsq)) {
      return bail();
    }
    svc_latency = ExactMoments::from_raw(lcount, lsum, lsumsq, lmin, lmax);
    std::istringstream shls;
    if (!next_svc("h", shls)) return bail();
    for (auto& c : svc_hist) {
      if (!(shls >> c)) return bail();
    }
    // Optional latency-attribution components ("s c <name> ..." moments,
    // "s ch <name> ..." histograms) — absent in older checkpoints; unknown
    // names (a newer writer's) are skipped.
    while (in.peek() == 's') {
      if (!std::getline(in, line)) {
        line.clear();
        break;
      }
      std::istringstream cls(line);
      std::string s0, ckw, cname;
      if (!(cls >> s0 >> ckw >> cname) || s0 != "s") return bail();
      const int ci = cname == "bwait" ? 0
                     : cname == "qwait" ? 1
                     : cname == "cons" ? 2
                                       : -1;
      if (ckw == "c") {
        std::uint64_t ccount = 0, cmin = 0, cmax = 0;
        std::string csum_s, csumsq_s;
        if (!(cls >> ccount >> csum_s >> csumsq_s >> cmin >> cmax)) {
          return bail();
        }
        U128 csum = 0, csumsq = 0;
        if (!parse_u128(csum_s, csum) || !parse_u128(csumsq_s, csumsq)) {
          return bail();
        }
        if (ci >= 0) {
          svc_comp[ci] =
              ExactMoments::from_raw(ccount, csum, csumsq, cmin, cmax);
        }
      } else if (ckw == "ch") {
        std::array<std::uint64_t, obs::LogHistogram::kBuckets> tmp{};
        for (auto& c : tmp) {
          if (!(cls >> c)) return bail();
        }
        if (ci >= 0) svc_comp_hist[ci] = tmp;
      }
      // Other "s <kw>" lines: skipped (forward compatibility).
    }
  }

  CellAccumulator built(rcap, fcap);
  built.rounds = parsed[0];
  built.msgs = parsed[1];
  built.shm_proposals = parsed[2];
  built.objects = parsed[3];
  built.decision_time = parsed[4];
  built.round_hist = Histogram::from_counts(lo, hi, std::move(counts));
  built.failures = std::move(fails);
  built.obs = obs_parsed;
  if (svc_active > 0) {
    built.svc.active_runs = svc_active;
    built.svc.ops = svc_parsed[0];
    built.svc.rate = svc_parsed[1];
    built.svc.batches = svc_parsed[2];
    built.svc.slots = svc_parsed[3];
    built.svc.latency = svc_latency;
    built.svc.latency_hist = obs::LogHistogram::from_counts(svc_hist);
    built.svc.batch_wait = svc_comp[0];
    built.svc.batch_wait_hist = obs::LogHistogram::from_counts(svc_comp_hist[0]);
    built.svc.seq_wait = svc_comp[1];
    built.svc.seq_wait_hist = obs::LogHistogram::from_counts(svc_comp_hist[1]);
    built.svc.consensus = svc_comp[2];
    built.svc.consensus_hist = obs::LogHistogram::from_counts(svc_comp_hist[2]);
  }
  out = std::move(built);
  return true;
}

void write_compacted_checkpoint(std::ostream& out, std::uint64_t fingerprint,
                                const CheckpointData& data) {
  write_checkpoint_header(out, fingerprint);
  for (const auto& [index, acc] : data.cells) {
    append_checkpoint_cell(out, index, acc);
  }
  for (const auto& [index, list] : data.chunks) {
    // A cell block supersedes its chunk trail (callers may promote a fully
    // chunk-covered cell into `cells` without erasing the chunk list).
    if (data.cells.find(index) != data.cells.end()) continue;
    // `list` is sorted and overlap-free (load_checkpoint_data's contract);
    // fuse each maximal run of adjacent ranges into one block.
    std::size_t i = 0;
    while (i < list.size()) {
      CellAccumulator merged = list[i].acc;
      std::size_t j = i + 1;
      while (j < list.size() && list[j].begin == list[j - 1].end) {
        merged.merge(list[j].acc);
        ++j;
      }
      append_checkpoint_chunk(out, index, list[i].begin, list[j - 1].end,
                              merged);
      i = j;
    }
  }
}

CheckpointData load_checkpoint_data(std::istream& in,
                                    std::uint64_t expected_fingerprint) {
  std::string line;
  // Header: skip blank/garbage prefix lines (append-mode guard newlines).
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string magic, version, grid_kw;
    std::uint64_t fp = 0;
    if (ls >> magic >> version >> grid_kw >> fp && magic == kMagic &&
        version == kVersion && grid_kw == "grid") {
      HYCO_CHECK_MSG(fp == expected_fingerprint,
                     "checkpoint belongs to a different grid (fingerprint "
                         << fp << ", expected " << expected_fingerprint
                         << ") — refusing to resume");
      have_header = true;
      break;
    }
    HYCO_CHECK_MSG(false, "not a hyco checkpoint (bad header line)");
  }
  HYCO_CHECK_MSG(have_header, "checkpoint stream is empty");

  CheckpointData data;
  // Blocks. A block is accepted only when fully parsed through its "done"
  // trailer; anything malformed drops the current block and resyncs on the
  // next "cell"/"chunk" line. A bail-out may have just read the *next*
  // block's header (e.g. a partial block cut before its trailer, appended
  // to by a later session) — `carry` re-processes that line instead of
  // discarding the complete block that follows it.
  bool carry = false;
  for (;;) {
    if (!carry && !std::getline(in, line)) break;
    carry = false;
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw) || (kw != "cell" && kw != "chunk")) continue;
    const bool is_chunk = kw == "chunk";

    std::uint64_t index = 0, begin = 0, end = 0;
    std::uint64_t runs = 0, term = 0, viol = 0;
    if (is_chunk) {
      if (!(ls >> index >> begin >> end >> runs >> term >> viol)) continue;
      if (begin >= end) continue;
    } else {
      if (!(ls >> index >> runs >> term >> viol)) continue;
    }

    CellAccumulator acc(1, 1);
    std::string stop;
    if (!read_accumulator_state(in, acc, &stop)) {
      carry = is_block_header(stop);
      line = stop;
      continue;
    }

    if (!std::getline(in, line)) break;
    std::istringstream dls(line);
    std::string done_kw;
    std::uint64_t done_idx = 0;
    bool trailer_ok = (dls >> done_kw >> done_idx) && done_kw == "done" &&
                      done_idx == index;
    if (trailer_ok && is_chunk) {
      std::uint64_t db = 0, de = 0;
      trailer_ok = (dls >> db >> de) && db == begin && de == end;
    }
    if (!trailer_ok) {
      carry = is_block_header(line);
      continue;
    }

    acc.runs = runs;
    acc.terminated = term;
    acc.violations = viol;
    if (is_chunk) {
      data.chunks[index].push_back({begin, end, std::move(acc)});
    } else {
      acc.finalize();
      data.cells.insert_or_assign(index, std::move(acc));
    }
  }

  // Chunk blocks of completed cells are redundant: the cell block holds the
  // merged whole.
  for (const auto& [index, acc] : data.cells) {
    (void)acc;
    data.chunks.erase(index);
  }
  // Per cell: sort chunk ranges and drop overlaps (a re-executed chunk that
  // raced its expired lease, or file corruption — folding both would count
  // runs twice). First writer wins, matching the coordinator's
  // exactly-once ledger.
  for (auto& [index, list] : data.chunks) {
    (void)index;
    std::stable_sort(list.begin(), list.end(),
                     [](const ChunkCheckpoint& a, const ChunkCheckpoint& b) {
                       return a.begin != b.begin ? a.begin < b.begin
                                                 : a.end < b.end;
                     });
    std::vector<ChunkCheckpoint> kept;
    for (auto& c : list) {
      if (!kept.empty() && c.begin < kept.back().end) continue;
      kept.push_back(std::move(c));
    }
    list = std::move(kept);
  }
  return data;
}

std::map<std::uint64_t, CellAccumulator> load_checkpoint(
    std::istream& in, std::uint64_t expected_fingerprint) {
  return load_checkpoint_data(in, expected_fingerprint).cells;
}

}  // namespace hyco
