#include "exp/sink.h"

#include <algorithm>
#include <utility>

#include "service/service_runner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace hyco {

namespace {

// Per-metric reservoir salts: each metric keys its priorities off the run
// seed with a distinct stream id so the kept subsets are independent.
constexpr std::uint64_t kSaltRounds = 0x9E1;
constexpr std::uint64_t kSaltMsgs = 0x9E2;
constexpr std::uint64_t kSaltShm = 0x9E3;
constexpr std::uint64_t kSaltObjects = 0x9E4;
constexpr std::uint64_t kSaltDecisionTime = 0x9E5;
constexpr std::uint64_t kSaltSvcOps = 0x9E6;
constexpr std::uint64_t kSaltSvcRate = 0x9E7;
constexpr std::uint64_t kSaltSvcBatches = 0x9E8;
constexpr std::uint64_t kSaltSvcSlots = 0x9E9;

/// Max-heap order on run index: the *highest* retained run index sits at
/// the top, so bounded rings deterministically keep the lowest indices.
bool run_less(const RunRecord& a, const RunRecord& b) { return a.run < b.run; }

/// Bounded insert keeping the `cap` records with the lowest run indices.
void bounded_push(std::vector<RunRecord>& heap, const RunRecord& r,
                  std::size_t cap) {
  if (cap == 0) return;
  if (heap.size() < cap) {
    heap.push_back(r);
    std::push_heap(heap.begin(), heap.end(), run_less);
    return;
  }
  if (!(r.run < heap.front().run)) return;
  std::pop_heap(heap.begin(), heap.end(), run_less);
  heap.back() = r;
  std::push_heap(heap.begin(), heap.end(), run_less);
}

}  // namespace

RunRecord extract_record(std::uint64_t run, std::uint64_t seed,
                         const RunResult& r) {
  RunRecord rec;
  rec.run = run;
  rec.seed = seed;
  rec.terminated = r.all_correct_decided;
  rec.safe_ok = r.safe();
  rec.success = r.success();
  rec.rounds = r.max_decision_round;
  rec.decision_time = r.last_decision_time;
  rec.msgs = r.net.unicasts_sent;
  rec.shm_proposals = r.shm.consensus_proposals;
  rec.consensus_objects = r.consensus_objects;
  rec.events = r.events;
  rec.crashed = r.crashed;
  rec.obs = r.obs;
  return rec;
}

RunRecord extract_service_record(std::uint64_t run, std::uint64_t seed,
                                 const ServiceRunResult& r) {
  RunRecord rec;
  rec.run = run;
  rec.seed = seed;
  rec.terminated = r.terminated;
  rec.safe_ok = r.safe_ok;
  rec.success = r.success();
  rec.rounds = static_cast<Round>(r.slots);
  rec.decision_time = r.end_time;
  rec.msgs = r.net.unicasts_sent;
  rec.shm_proposals = r.shm.consensus_proposals;
  rec.consensus_objects = r.consensus_objects;
  rec.events = r.events;
  rec.crashed = r.crashed;
  // Message-class counters are free here too; phase-latency ids stay zero
  // (the service does not instrument consensus phases).
  rec.obs[obs::ObsId::kDelivered] = r.net.delivered;
  rec.obs[obs::ObsId::kDroppedPartitioned] = r.net.dropped_partitioned;
  rec.obs[obs::ObsId::kDroppedLost] = r.net.dropped_lost;
  rec.obs[obs::ObsId::kDuplicated] = r.net.duplicated;
  rec.obs[obs::ObsId::kHeldPartitioned] = r.net.held_partitioned;
  rec.service.active = true;
  rec.service.ops = r.ops_completed;
  rec.service.submitted = r.ops_submitted;
  rec.service.batches = r.batches;
  rec.service.slots = r.slots;
  rec.service.ops_per_sec = r.ops_per_sec();
  rec.service.latency = r.latency;
  rec.service.latency_hist = r.latency_hist;
  rec.service.batch_wait = r.batch_wait;
  rec.service.batch_wait_hist = r.batch_wait_hist;
  rec.service.seq_wait = r.seq_wait;
  rec.service.seq_wait_hist = r.seq_wait_hist;
  rec.service.consensus = r.consensus;
  rec.service.consensus_hist = r.consensus_hist;
  return rec;
}

void MetricStats::add(std::uint64_t value, std::uint64_t priority) {
  moments_.add(value);
  reservoir_.add(priority, static_cast<double>(value));
}

void MetricStats::merge(const MetricStats& other) {
  moments_.merge(other.moments_);
  reservoir_.merge(other.reservoir_);
}

double MetricStats::percentile(double q) const {
  HYCO_CHECK_MSG(q >= 0.0 && q <= 100.0,
                 "percentile " << q << " out of range");
  const std::vector<double>& xs = reservoir_.sorted_values();
  if (xs.empty()) return 0.0;
  if (xs.size() == 1) return xs[0];
  const double rank = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void ServiceAgg::add(const RunRecord& r) {
  if (!r.service.active) return;
  ++active_runs;
  ops.add(r.service.ops, mix64(r.seed, kSaltSvcOps));
  rate.add(r.service.ops_per_sec, mix64(r.seed, kSaltSvcRate));
  batches.add(r.service.batches, mix64(r.seed, kSaltSvcBatches));
  slots.add(r.service.slots, mix64(r.seed, kSaltSvcSlots));
  latency.merge(r.service.latency);
  latency_hist.merge(r.service.latency_hist);
  batch_wait.merge(r.service.batch_wait);
  batch_wait_hist.merge(r.service.batch_wait_hist);
  seq_wait.merge(r.service.seq_wait);
  seq_wait_hist.merge(r.service.seq_wait_hist);
  consensus.merge(r.service.consensus);
  consensus_hist.merge(r.service.consensus_hist);
}

void ServiceAgg::merge(const ServiceAgg& other) {
  active_runs += other.active_runs;
  ops.merge(other.ops);
  rate.merge(other.rate);
  batches.merge(other.batches);
  slots.merge(other.slots);
  latency.merge(other.latency);
  latency_hist.merge(other.latency_hist);
  batch_wait.merge(other.batch_wait);
  batch_wait_hist.merge(other.batch_wait_hist);
  seq_wait.merge(other.seq_wait);
  seq_wait_hist.merge(other.seq_wait_hist);
  consensus.merge(other.consensus);
  consensus_hist.merge(other.consensus_hist);
}

CellAccumulator::CellAccumulator(std::size_t reservoir_capacity,
                                 std::size_t failure_cap)
    : rounds(reservoir_capacity),
      msgs(reservoir_capacity),
      shm_proposals(reservoir_capacity),
      objects(reservoir_capacity),
      decision_time(reservoir_capacity),
      svc(reservoir_capacity),
      failure_cap(failure_cap) {}

void CellAccumulator::add(const RunRecord& r) {
  ++runs;
  if (r.terminated) {
    ++terminated;
    rounds.add(static_cast<std::uint64_t>(r.rounds),
               mix64(r.seed, kSaltRounds));
    msgs.add(r.msgs, mix64(r.seed, kSaltMsgs));
    shm_proposals.add(r.shm_proposals, mix64(r.seed, kSaltShm));
    objects.add(r.consensus_objects, mix64(r.seed, kSaltObjects));
    decision_time.add(static_cast<std::uint64_t>(r.decision_time),
                      mix64(r.seed, kSaltDecisionTime));
    round_hist.add(static_cast<double>(r.rounds));
  }
  if (!r.safe_ok) ++violations;
  if (!r.success) bounded_push(failures, r, failure_cap);
  obs.add(r.obs);
  svc.add(r);
}

void CellAccumulator::merge(const CellAccumulator& other) {
  runs += other.runs;
  terminated += other.terminated;
  violations += other.violations;
  rounds.merge(other.rounds);
  msgs.merge(other.msgs);
  shm_proposals.merge(other.shm_proposals);
  objects.merge(other.objects);
  decision_time.merge(other.decision_time);
  round_hist.merge(other.round_hist);
  for (const RunRecord& r : other.failures) {
    bounded_push(failures, r, failure_cap);
  }
  obs.merge(other.obs);
  svc.merge(other.svc);
}

void CellAccumulator::finalize() {
  std::sort(failures.begin(), failures.end(), run_less);
}

double CellAccumulator::termination_rate() const {
  return runs == 0 ? 0.0
                   : static_cast<double>(terminated) /
                         static_cast<double>(runs);
}

CollectingSink::CollectingSink(std::vector<ExperimentCell> cells, Options opts)
    : cells_(std::move(cells)), opts_(std::move(opts)) {
  slots_.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void CollectingSink::absorb(std::uint64_t cell_pos, std::uint64_t begin,
                            std::uint64_t end, CellAccumulator&& chunk,
                            std::vector<RunRecord>&& records) {
  HYCO_CHECK_MSG(cell_pos < slots_.size(),
                 "absorb: cell position " << cell_pos << " out of range");
  if (opts_.on_chunk) {
    const std::lock_guard<std::mutex> lock(complete_mu_);
    opts_.on_chunk(cells_[cell_pos], begin, end, chunk);
  }
  Slot& slot = *slots_[cell_pos];
  const std::lock_guard<std::mutex> lock(slot.mu);
  if (!slot.has_acc) {
    slot.acc = std::move(chunk);
    slot.has_acc = true;
  } else {
    slot.acc.merge(chunk);
  }
  if (opts_.retain_records) {
    const auto cap = opts_.max_records_per_cell;
    if (cap == std::numeric_limits<std::uint64_t>::max()) {
      slot.records.insert(slot.records.end(), records.begin(), records.end());
    } else {
      for (const RunRecord& r : records) {
        bounded_push(slot.records, r, static_cast<std::size_t>(cap));
      }
    }
  }
}

void CollectingSink::absorb_profile(std::uint64_t cell_pos,
                                    const ChunkProfile& prof) {
  HYCO_CHECK_MSG(cell_pos < slots_.size(),
                 "absorb_profile: cell position " << cell_pos
                                                  << " out of range");
  Slot& slot = *slots_[cell_pos];
  const std::lock_guard<std::mutex> lock(slot.mu);
  slot.profile.merge(prof);
}

void CollectingSink::on_cell_complete(std::uint64_t cell_pos) {
  HYCO_CHECK_MSG(cell_pos < slots_.size(),
                 "on_cell_complete: cell position " << cell_pos
                                                    << " out of range");
  Slot& slot = *slots_[cell_pos];
  {
    const std::lock_guard<std::mutex> lock(slot.mu);
    slot.acc.finalize();
    std::sort(slot.records.begin(), slot.records.end(), run_less);
  }
  if (opts_.on_complete) {
    const std::lock_guard<std::mutex> lock(complete_mu_);
    opts_.on_complete(cells_[cell_pos], slot.acc);
  }
}

std::vector<CellResult> CollectingSink::take_results() {
  std::vector<CellResult> results;
  results.reserve(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    CellResult res(std::move(cells_[i]), std::move(slots_[i]->acc));
    res.records = std::move(slots_[i]->records);
    res.profile = slots_[i]->profile;
    results.push_back(std::move(res));
  }
  return results;
}

}  // namespace hyco
