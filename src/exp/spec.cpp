#include "exp/spec.h"

#include <limits>
#include <sstream>
#include <utility>

#include "service/service_runner.h"
#include "util/assert.h"
#include "util/rng.h"

namespace hyco {

DelayAxis DelayAxis::of(std::string name, DelayConfig cfg) {
  DelayAxis a;
  a.name = std::move(name);
  a.config = cfg;
  return a;
}

DelayAxis DelayAxis::adversarial(
    std::string name, std::function<std::unique_ptr<DelayModel>()> factory) {
  DelayAxis a;
  a.name = std::move(name);
  a.factory = std::move(factory);
  return a;
}

CrashAxis CrashAxis::none() { return CrashAxis{}; }

CrashAxis CrashAxis::of(std::string name, CrashPlan plan) {
  CrashAxis a;
  a.name = std::move(name);
  a.make = [plan = std::move(plan)](const ClusterLayout& layout) {
    HYCO_CHECK_MSG(plan.specs.size() == static_cast<std::size_t>(layout.n()),
                   "fixed crash plan sized for n=" << plan.specs.size()
                                                   << " used with n="
                                                   << layout.n());
    return plan;
  };
  return a;
}

CrashAxis CrashAxis::of(std::string name,
                        std::function<CrashPlan(const ClusterLayout&)> make) {
  CrashAxis a;
  a.name = std::move(name);
  a.make = std::move(make);
  return a;
}

ScenarioAxis ScenarioAxis::none() { return ScenarioAxis{}; }

ScenarioAxis ScenarioAxis::of(std::string name, ScenarioConfig config) {
  ScenarioAxis a;
  a.name = std::move(name);
  a.config = std::move(config);
  return a;
}

ScenarioAxis ScenarioAxis::of(ScenarioConfig config) {
  ScenarioAxis a;
  a.name = config.label();
  a.config = std::move(config);
  return a;
}

ServiceAxis ServiceAxis::none() { return ServiceAxis{}; }

ServiceAxis ServiceAxis::of(std::uint64_t clients,
                            std::uint64_t ops_per_client,
                            std::size_t batch_max, SimTime batch_delay,
                            double load) {
  ServiceAxis a;
  a.enabled = true;
  a.clients = clients;
  a.ops_per_client = ops_per_client;
  a.batch_max = batch_max;
  a.batch_delay = batch_delay;
  a.load = load;
  std::ostringstream os;
  os << "c" << clients << "x" << ops_per_client << " b" << batch_max << " d"
     << batch_delay << " l" << load;
  a.name = os.str();
  return a;
}

const char* to_cstring(InputKind k) {
  switch (k) {
    case InputKind::Split: return "split";
    case InputKind::AllZero: return "all-0";
    case InputKind::AllOne: return "all-1";
  }
  return "?";
}

std::size_t ExperimentSpec::cell_count() const {
  return algorithms.size() * layouts.size() * delays.size() * crashes.size() *
         scenarios.size() * coin_epsilons.size() * services.size();
}

std::uint64_t ExperimentSpec::total_runs() const {
  const auto cells = static_cast<std::uint64_t>(cell_count());
  if (cells == 0 || runs_per_cell == 0) return 0;
  HYCO_CHECK_MSG(runs_per_cell <=
                     std::numeric_limits<std::uint64_t>::max() / cells,
                 "grid size overflows: " << cells << " cells x "
                                         << runs_per_cell << " runs");
  return cells * runs_per_cell;
}

std::vector<ExperimentCell> ExperimentSpec::expand() const {
  HYCO_CHECK_MSG(!algorithms.empty(), "experiment needs >= 1 algorithm");
  HYCO_CHECK_MSG(!layouts.empty(), "experiment needs >= 1 layout");
  HYCO_CHECK_MSG(!delays.empty(), "experiment needs >= 1 delay axis value");
  HYCO_CHECK_MSG(!crashes.empty(), "experiment needs >= 1 crash axis value");
  HYCO_CHECK_MSG(!scenarios.empty(),
                 "experiment needs >= 1 scenario axis value");
  HYCO_CHECK_MSG(!coin_epsilons.empty(),
                 "experiment needs >= 1 coin_epsilon value");
  HYCO_CHECK_MSG(!services.empty(),
                 "experiment needs >= 1 service axis value");
  HYCO_CHECK_MSG(runs_per_cell >= 1, "runs_per_cell must be >= 1");

  std::vector<ExperimentCell> cells;
  cells.reserve(cell_count());
  for (const Algorithm alg : algorithms) {
    for (const ClusterLayout& layout : layouts) {
      for (const DelayAxis& delay : delays) {
        for (const CrashAxis& crash : crashes) {
          for (const ScenarioAxis& scenario : scenarios) {
            for (const double eps : coin_epsilons) {
              for (const ServiceAxis& service : services) {
                ExperimentCell c(layout);
                c.index = cells.size();
                c.alg = alg;
                c.delay = delay;
                c.crash = crash;
                c.scenario = scenario;
                c.coin_epsilon = eps;
                c.service = service;
                c.runs = runs_per_cell;
                c.base_seed = base_seed;
                c.inputs = inputs;
                c.max_rounds = max_rounds;
                c.start_jitter = start_jitter;
                c.adversary_bit = adversary_bit;
                c.collect_obs = collect_obs;
                cells.push_back(std::move(c));
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

std::uint64_t ExperimentCell::seed_for(std::uint64_t run) const {
  return mix64(base_seed, mix64(static_cast<std::uint64_t>(index), run));
}

RunConfig ExperimentCell::run_config(std::uint64_t run) const {
  HYCO_CHECK_MSG(run < runs,
                 "run index " << run << " out of range [0, " << runs << ")");
  RunConfig cfg(layout);
  cfg.alg = alg;
  switch (inputs) {
    case InputKind::Split: cfg.inputs = split_inputs(layout.n()); break;
    case InputKind::AllZero:
      cfg.inputs = uniform_inputs(layout.n(), Estimate::Zero);
      break;
    case InputKind::AllOne:
      cfg.inputs = uniform_inputs(layout.n(), Estimate::One);
      break;
  }
  cfg.seed = seed_for(run);
  cfg.delays = delay.config;
  cfg.delay_factory = delay.factory;
  if (crash.make) cfg.crashes = crash.make(layout);
  cfg.scenario = scenario.config;
  cfg.max_rounds = max_rounds;
  cfg.start_jitter = start_jitter;
  cfg.coin_epsilon = coin_epsilon;
  cfg.adversary_bit = adversary_bit;
  cfg.collect_obs = collect_obs;
  return cfg;
}

ServiceRunConfig ExperimentCell::service_run_config(std::uint64_t run) const {
  HYCO_CHECK_MSG(run < runs,
                 "run index " << run << " out of range [0, " << runs << ")");
  HYCO_CHECK_MSG(service.enabled,
                 "service_run_config on a non-service cell");
  ServiceRunConfig cfg(layout);
  cfg.seed = seed_for(run);
  cfg.delays = delay.config;
  cfg.delay_factory = delay.factory;
  if (crash.make) cfg.crashes = crash.make(layout);
  cfg.scenario = scenario.config;
  cfg.max_rounds_per_bit = max_rounds;
  cfg.coin_epsilon = coin_epsilon;
  cfg.adversary_bit = adversary_bit;
  cfg.clients = service.clients;
  cfg.ops_per_client = service.ops_per_client;
  cfg.batch_max = service.batch_max;
  cfg.batch_delay = service.batch_delay;
  cfg.load = service.load;
  return cfg;
}

std::string ExperimentCell::label() const {
  std::ostringstream os;
  os << to_cstring(alg) << " n=" << layout.n() << " m=" << layout.m()
     << " delay=" << delay.name << " crash=" << crash.name
     << " scn=" << scenario.name << " eps=" << coin_epsilon;
  if (service.enabled) os << " svc=" << service.name;
  return os.str();
}

}  // namespace hyco
