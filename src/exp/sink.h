// Streaming run pipeline: where executed runs land.
//
// Workers fold each chunk of a cell's runs into a fresh CellAccumulator —
// exact integer moments, deterministic bottom-k quantile reservoirs, a
// round histogram, and a bounded worst-failure ring — and hand it to a
// RunSink. Every accumulator component is a pure function of the run
// *multiset* (integer sums; priority-keyed reservoirs; run-index-bounded
// rings), so merging chunks in any order or grouping produces bit-identical
// cell statistics: streaming execution is byte-identical to batch at any
// thread count by construction, and memory stays O(cells), not O(runs).
//
// CollectingSink is the standard sink: it merges chunks per cell, can
// optionally retain raw RunRecords (batch mode — the thin record-keeping
// sink existing tests pin streaming-vs-batch equivalence against), and
// invokes a completion hook per finished cell (checkpoint appends, live
// progress).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "core/runner.h"
#include "exp/spec.h"
#include "util/stats.h"

namespace hyco {

struct ServiceRunResult;

/// Per-run stats of a replicated-service run (all-zero / inactive for
/// plain consensus runs). Latency rides as exact moments plus a log
/// histogram — both pure functions of the per-op sample multiset — NOT as
/// extra ObsIds: ObsAccumulator adds every id on every run, so consensus
/// runs would pollute service latency histograms with zeros.
struct ServiceRunStats {
  bool active = false;
  std::uint64_t ops = 0;        ///< completed client ops
  std::uint64_t submitted = 0;  ///< submitted client ops
  std::uint64_t batches = 0;    ///< batches minted
  std::uint64_t slots = 0;      ///< most slots decided by any replica
  std::uint64_t ops_per_sec = 0;  ///< exact integer ops * 1e9 / end_time
  ExactMoments latency;           ///< per-op client latency, sim ns
  obs::LogHistogram latency_hist;
  /// Latency attribution components (batching wait / slot queueing /
  /// consensus+delivery); per-op samples that sum to `latency` exactly.
  ExactMoments batch_wait;
  obs::LogHistogram batch_wait_hist;
  ExactMoments seq_wait;
  obs::LogHistogram seq_wait_hist;
  ExactMoments consensus;
  obs::LogHistogram consensus_hist;
};

/// Compact per-run metrics extracted from a RunResult (a full RunResult per
/// run would hold O(n) vectors; large grids only need these scalars).
struct RunRecord {
  std::uint64_t run = 0;  ///< run index within the cell
  std::uint64_t seed = 0;
  bool terminated = false;  ///< RunResult::all_correct_decided
  bool safe_ok = true;      ///< RunResult::safe()
  bool success = false;     ///< RunResult::success()
  Round rounds = 0;         ///< deepest deciding round
  SimTime decision_time = kSimTimeNever;
  std::uint64_t msgs = 0;  ///< unicasts scheduled
  std::uint64_t shm_proposals = 0;
  std::uint64_t consensus_objects = 0;
  std::uint64_t events = 0;
  std::uint64_t crashed = 0;
  obs::ObsSample obs;  ///< observability counters (RunResult::obs)
  ServiceRunStats service;  ///< inactive unless the cell runs the service
};

RunRecord extract_record(std::uint64_t run, std::uint64_t seed,
                         const RunResult& r);

/// The service analogue of extract_record: maps a ServiceRunResult into a
/// RunRecord (rounds := decided slots, decision_time := end time, plus the
/// dedicated service block).
RunRecord extract_service_record(std::uint64_t run, std::uint64_t seed,
                                 const ServiceRunResult& r);

/// Online statistics for one metric: exact moments for count/mean/sd/min/max
/// plus a deterministic reservoir for quantiles. Priorities fed to add()
/// must be pure hashes of run identity (we use the run's seed) so the
/// reservoir — and therefore every emitted percentile — is independent of
/// execution order. While a cell has at most `reservoir capacity` samples,
/// percentiles are exact (the reservoir holds every value).
class MetricStats {
 public:
  static constexpr std::size_t kDefaultReservoir = 1024;

  explicit MetricStats(std::size_t reservoir_capacity = kDefaultReservoir)
      : reservoir_(reservoir_capacity) {}
  MetricStats(ExactMoments moments, ReservoirSample reservoir)
      : moments_(moments), reservoir_(std::move(reservoir)) {}

  void add(std::uint64_t value, std::uint64_t priority);
  void merge(const MetricStats& other);

  [[nodiscard]] std::uint64_t count() const { return moments_.count(); }
  [[nodiscard]] double mean() const { return moments_.mean(); }
  [[nodiscard]] double stddev() const { return moments_.stddev(); }
  [[nodiscard]] double min() const { return moments_.min(); }
  [[nodiscard]] double max() const { return moments_.max(); }
  /// Linear-interpolated percentile over the reservoir, q in [0, 100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const ExactMoments& moments() const { return moments_; }
  [[nodiscard]] const ReservoirSample& reservoir() const { return reservoir_; }

 private:
  ExactMoments moments_;
  ReservoirSample reservoir_;
};

/// Merge-order-invariant per-cell aggregate of the service workload:
/// MetricStats over the per-run scalars, pooled exact latency moments, and
/// the pooled per-op latency log-histogram (p50/p99/p999 come from here).
/// Dormant (active_runs == 0) on plain consensus cells, so non-service
/// artifacts stay byte-identical to pre-service builds.
struct ServiceAgg {
  explicit ServiceAgg(
      std::size_t reservoir_capacity = MetricStats::kDefaultReservoir)
      : ops(reservoir_capacity),
        rate(reservoir_capacity),
        batches(reservoir_capacity),
        slots(reservoir_capacity) {}

  std::uint64_t active_runs = 0;
  MetricStats ops;      ///< completed ops per run
  MetricStats rate;     ///< decided-ops/sec per run (exact integer)
  MetricStats batches;  ///< batches minted per run
  MetricStats slots;    ///< slots decided per run
  ExactMoments latency;            ///< pooled per-op latency moments
  obs::LogHistogram latency_hist;  ///< pooled per-op latency histogram
  /// Pooled latency attribution components (see ServiceRunStats).
  ExactMoments batch_wait;
  obs::LogHistogram batch_wait_hist;
  ExactMoments seq_wait;
  obs::LogHistogram seq_wait_hist;
  ExactMoments consensus;
  obs::LogHistogram consensus_hist;

  void add(const RunRecord& r);
  void merge(const ServiceAgg& other);
};

/// Aggregated outcome of one cell (or one chunk of it, pre-merge).
/// Summaries cover terminated runs only (matching how the paper's tables
/// report cost conditioned on deciding).
struct CellAccumulator {
  static constexpr std::size_t kDefaultFailureCap = 64;

  explicit CellAccumulator(
      std::size_t reservoir_capacity = MetricStats::kDefaultReservoir,
      std::size_t failure_cap = kDefaultFailureCap);

  std::uint64_t runs = 0;
  std::uint64_t terminated = 0;
  std::uint64_t violations = 0;  ///< runs where safety did not hold

  MetricStats rounds;
  MetricStats msgs;
  MetricStats shm_proposals;
  MetricStats objects;
  MetricStats decision_time;
  Histogram round_hist{0.0, 64.0, 16};  ///< decision-round distribution

  /// Observability metrics over ALL runs (not just terminated ones):
  /// message-class counters and — when the spec collects them — per-phase
  /// latency moments + log-scale histograms. Merge-order-invariant like
  /// every other component.
  obs::ObsAccumulator obs;

  /// Service-workload aggregate; dormant on plain consensus cells.
  ServiceAgg svc;

  /// Bounded ring of failing runs: the `failure_cap` non-success() runs
  /// with the lowest run indices — a deterministic replay work list that
  /// survives streaming execution (no retained records needed). Sorted by
  /// run index after finalize().
  std::vector<RunRecord> failures;
  std::size_t failure_cap = kDefaultFailureCap;

  void add(const RunRecord& r);
  void merge(const CellAccumulator& other);
  /// Sorts the failure ring into run order; call once per finished cell.
  void finalize();

  [[nodiscard]] double termination_rate() const;
};

/// Wall-clock execution profile of the chunks folded into one cell.
/// Non-deterministic by nature (it measures the host, not the simulation),
/// so it lives beside the accumulator, never inside checkpoint or wire
/// artifacts.
struct ChunkProfile {
  std::uint64_t wall_ns = 0;  ///< summed per-chunk wall time
  std::uint64_t cpu_ns = 0;   ///< summed per-chunk thread CPU time
  std::uint64_t msgs = 0;     ///< unicasts simulated in profiled chunks
  std::uint64_t events = 0;   ///< simulator events in profiled chunks
  std::uint64_t runs = 0;     ///< runs covered by profiled chunks
  std::uint64_t chunks = 0;   ///< chunks profiled

  void merge(const ChunkProfile& other) {
    wall_ns += other.wall_ns;
    cpu_ns += other.cpu_ns;
    msgs += other.msgs;
    events += other.events;
    runs += other.runs;
    chunks += other.chunks;
  }
};

/// One finished cell: its grid coordinates plus merged statistics, and —
/// batch mode only — the retained per-run records.
struct CellResult {
  explicit CellResult(ExperimentCell c) : cell(std::move(c)) {}
  CellResult(ExperimentCell c, CellAccumulator a)
      : cell(std::move(c)), acc(std::move(a)) {}

  ExperimentCell cell;
  CellAccumulator acc;
  /// Raw per-run metrics in run order; empty under streaming sinks.
  std::vector<RunRecord> records;
  /// Wall-clock execution profile; all-zero unless the executor profiled.
  ChunkProfile profile;

  [[nodiscard]] std::uint64_t runs() const { return acc.runs; }
  [[nodiscard]] std::uint64_t terminated() const { return acc.terminated; }
  [[nodiscard]] std::uint64_t violations() const { return acc.violations; }
  [[nodiscard]] const MetricStats& rounds() const { return acc.rounds; }
  [[nodiscard]] const MetricStats& msgs() const { return acc.msgs; }
  [[nodiscard]] const MetricStats& shm_proposals() const {
    return acc.shm_proposals;
  }
  [[nodiscard]] const MetricStats& objects() const { return acc.objects; }
  [[nodiscard]] const MetricStats& decision_time() const {
    return acc.decision_time;
  }
  [[nodiscard]] const Histogram& round_hist() const { return acc.round_hist; }
  [[nodiscard]] const obs::ObsAccumulator& obs() const { return acc.obs; }
  [[nodiscard]] const std::vector<RunRecord>& failures() const {
    return acc.failures;
  }
  [[nodiscard]] double termination_rate() const {
    return acc.termination_rate();
  }
};

/// A contiguous range of one cell's run indices, [begin, end). The executor
/// and the distributed work ledger both speak spans: a whole cell is the
/// span [0, runs), and a mid-cell resume executes only the spans a chunk
/// checkpoint has not folded yet.
struct RunSpan {
  std::uint64_t cell_pos = 0;  ///< position in the executed cell list
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t length() const { return end - begin; }
};

/// Executor-facing consumer of finished chunks. All methods may be called
/// concurrently from worker threads.
class RunSink {
 public:
  virtual ~RunSink() = default;

  /// True when workers should also collect raw RunRecords per chunk
  /// (batch mode); streaming sinks return false and never see a record.
  [[nodiscard]] virtual bool wants_records() const { return false; }

  /// Folds one finished chunk — runs [begin, end) of cell `cell_pos`
  /// (position in the executed cell list, not the spec-expansion index) —
  /// into the sink.
  virtual void absorb(std::uint64_t cell_pos, std::uint64_t begin,
                      std::uint64_t end, CellAccumulator&& chunk,
                      std::vector<RunRecord>&& records) = 0;

  /// Executor profiling hook: wall/CPU cost of one finished chunk of cell
  /// `cell_pos`. Called only when the executor profiles (Options::profile);
  /// host-side measurement, kept apart from the deterministic absorb path.
  virtual void absorb_profile(std::uint64_t cell_pos,
                              const ChunkProfile& prof) {
    (void)cell_pos;
    (void)prof;
  }

  /// Every scheduled run of the cell has been absorbed. Cells complete in
  /// any order; called from whichever worker finished the last chunk.
  virtual void on_cell_complete(std::uint64_t cell_pos) { (void)cell_pos; }
};

/// The standard sink: merges chunks into one accumulator per cell and
/// yields CellResults in cell order. With `retain_records` it is the thin
/// batch-mode sink (records kept, bounded by `max_records_per_cell`, the
/// lowest run indices winning — deterministic under any schedule); without,
/// it is the bounded-memory streaming sink.
class CollectingSink : public RunSink {
 public:
  struct Options {
    bool retain_records = false;
    std::uint64_t max_records_per_cell =
        std::numeric_limits<std::uint64_t>::max();
    /// Invoked once per finished cell (from a worker thread; completions
    /// are serialized by the sink) with the cell and its final, finalized
    /// accumulator — the checkpoint-append / live-emission hook.
    std::function<void(const ExperimentCell&, const CellAccumulator&)>
        on_complete;
    /// Invoked once per absorbed chunk (serialized by the sink) with the
    /// cell, the chunk's run range [begin, end), and the chunk accumulator
    /// *before* it merges into the cell slot — the chunk-granular
    /// checkpoint-append hook that lets a monster cell resume mid-flight.
    std::function<void(const ExperimentCell&, std::uint64_t begin,
                       std::uint64_t end, const CellAccumulator&)>
        on_chunk;
  };

  CollectingSink(std::vector<ExperimentCell> cells, Options opts);

  [[nodiscard]] bool wants_records() const override {
    return opts_.retain_records;
  }
  void absorb(std::uint64_t cell_pos, std::uint64_t begin, std::uint64_t end,
              CellAccumulator&& chunk,
              std::vector<RunRecord>&& records) override;
  void absorb_profile(std::uint64_t cell_pos,
                      const ChunkProfile& prof) override;
  void on_cell_complete(std::uint64_t cell_pos) override;

  /// Results in cell order; call after the executor returns.
  [[nodiscard]] std::vector<CellResult> take_results();

 private:
  struct Slot {
    std::mutex mu;
    bool has_acc = false;
    CellAccumulator acc;
    std::vector<RunRecord> records;
    ChunkProfile profile;
  };

  std::vector<ExperimentCell> cells_;
  Options opts_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::mutex complete_mu_;  ///< serializes on_complete/on_chunk invocations
};

}  // namespace hyco
