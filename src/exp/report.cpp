#include "exp/report.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/assert.h"
#include "util/csv.h"

namespace hyco {

std::string format_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN literals
  char buf[64];
  // std::to_chars emits the shortest representation that round-trips —
  // locale-free, so identical on every run.
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_summary_fields(std::vector<std::string>& fields,
                           const MetricStats& s) {
  fields.push_back(format_number(s.mean()));
  fields.push_back(format_number(s.percentile(50)));
  fields.push_back(format_number(s.percentile(95)));
  fields.push_back(format_number(s.max()));
}

void write_summary_json(std::ostream& out, const char* key,
                        const MetricStats& s) {
  out << '"' << key << "\":{\"count\":" << s.count()
      << ",\"mean\":" << format_number(s.mean())
      << ",\"sd\":" << format_number(s.stddev())
      << ",\"min\":" << format_number(s.min())
      << ",\"p50\":" << format_number(s.percentile(50))
      << ",\"p95\":" << format_number(s.percentile(95))
      << ",\"max\":" << format_number(s.max()) << '}';
}

// The trailing latency ids, in emission order. kRounds is named
// "decision_rounds" precisely so these columns cannot collide with the
// base "rounds_*" summary columns.
constexpr obs::ObsId kLatencyIds[5] = {
    obs::ObsId::kPhase1Ns, obs::ObsId::kPhase2Ns,
    obs::ObsId::kDecideSpreadNs, obs::ObsId::kRounds,
    obs::ObsId::kQuorumWaitNs};

// The scenario message-class counters surfaced by --net-stats.
constexpr obs::ObsId kNetCounterIds[5] = {
    obs::ObsId::kDelivered, obs::ObsId::kDroppedPartitioned,
    obs::ObsId::kDroppedLost, obs::ObsId::kDuplicated,
    obs::ObsId::kHeldPartitioned};

double profile_msgs_per_sec(const ChunkProfile& p) {
  if (p.wall_ns == 0) return 0.0;
  return static_cast<double>(p.msgs) /
         (static_cast<double>(p.wall_ns) / 1e9);
}

std::vector<std::string> csv_header(const ReportOptions& opts) {
  std::vector<std::string> header{
      "cell", "algorithm", "n", "m", "layout", "delay", "crash",
      "scenario", "coin_epsilon", "runs", "terminated", "violations",
      "rounds_mean", "rounds_p50", "rounds_p95", "rounds_max",
      "msgs_mean", "msgs_p50", "msgs_p95", "msgs_max",
      "shm_proposals_mean", "shm_proposals_p50", "shm_proposals_p95",
      "shm_proposals_max", "objects_mean", "objects_p50", "objects_p95",
      "objects_max", "decision_time_mean", "decision_time_p50",
      "decision_time_p95", "decision_time_max"};
  if (opts.net_stats) {
    for (const obs::ObsId id : kNetCounterIds) {
      header.push_back(std::string(obs::obs_id_name(id)) + "_sum");
    }
  }
  if (opts.phase_metrics) {
    header.emplace_back("coin_flips_mean");
    for (const obs::ObsId id : kLatencyIds) {
      const std::string name = obs::obs_id_name(id);
      header.push_back(name + "_mean");
      header.push_back(name + "_p95");
      header.push_back(name + "_max");
    }
  }
  if (opts.service) {
    header.emplace_back("service");
    header.emplace_back("svc_runs");
    header.emplace_back("svc_ops_mean");
    header.emplace_back("svc_ops_per_sec_mean");
    header.emplace_back("svc_ops_per_sec_p50");
    header.emplace_back("svc_batches_mean");
    header.emplace_back("svc_slots_mean");
    header.emplace_back("svc_lat_mean_ns");
    header.emplace_back("svc_lat_p50_ns");
    header.emplace_back("svc_lat_p99_ns");
    header.emplace_back("svc_lat_p999_ns");
    header.emplace_back("svc_lat_max_ns");
    // Latency attribution: per-op means/p99s of the three components that
    // sum to the client latency (batching wait, slot queueing, consensus).
    header.emplace_back("svc_batch_wait_mean_ns");
    header.emplace_back("svc_batch_wait_p99_ns");
    header.emplace_back("svc_seq_wait_mean_ns");
    header.emplace_back("svc_seq_wait_p99_ns");
    header.emplace_back("svc_consensus_mean_ns");
    header.emplace_back("svc_consensus_p99_ns");
  }
  if (opts.profile) {
    header.emplace_back("wall_ms");
    header.emplace_back("cpu_ms");
    header.emplace_back("msgs_per_sec");
  }
  return header;
}

void write_csv_row(CsvWriter& w, const CellResult& r,
                   const ReportOptions& opts) {
  std::vector<std::string> fields;
  fields.push_back(std::to_string(r.cell.index));
  fields.emplace_back(to_cstring(r.cell.alg));
  fields.push_back(std::to_string(r.cell.layout.n()));
  fields.push_back(std::to_string(r.cell.layout.m()));
  fields.push_back(r.cell.layout.to_string());
  fields.push_back(r.cell.delay.name);
  fields.push_back(r.cell.crash.name);
  fields.push_back(r.cell.scenario.name);
  fields.push_back(format_number(r.cell.coin_epsilon));
  fields.push_back(std::to_string(r.runs()));
  fields.push_back(std::to_string(r.terminated()));
  fields.push_back(std::to_string(r.violations()));
  append_summary_fields(fields, r.rounds());
  append_summary_fields(fields, r.msgs());
  append_summary_fields(fields, r.shm_proposals());
  append_summary_fields(fields, r.objects());
  append_summary_fields(fields, r.decision_time());
  if (opts.net_stats) {
    for (const obs::ObsId id : kNetCounterIds) {
      fields.push_back(std::to_string(r.obs().sum(id)));
    }
  }
  if (opts.phase_metrics) {
    fields.push_back(
        format_number(r.obs().moments(obs::ObsId::kCoinFlips).mean()));
    for (const obs::ObsId id : kLatencyIds) {
      fields.push_back(format_number(r.obs().moments(id).mean()));
      fields.push_back(format_number(r.obs().histogram(id).percentile(95)));
      fields.push_back(format_number(r.obs().moments(id).max()));
    }
  }
  if (opts.service) {
    const ServiceAgg& svc = r.acc.svc;
    fields.push_back(r.cell.service.enabled ? r.cell.service.name : "none");
    fields.push_back(std::to_string(svc.active_runs));
    fields.push_back(format_number(svc.ops.mean()));
    fields.push_back(format_number(svc.rate.mean()));
    fields.push_back(format_number(svc.rate.percentile(50)));
    fields.push_back(format_number(svc.batches.mean()));
    fields.push_back(format_number(svc.slots.mean()));
    fields.push_back(format_number(svc.latency.mean()));
    fields.push_back(format_number(svc.latency_hist.percentile(50)));
    fields.push_back(format_number(svc.latency_hist.percentile(99)));
    fields.push_back(format_number(svc.latency_hist.percentile(99.9)));
    fields.push_back(format_number(svc.latency.max()));
    fields.push_back(format_number(svc.batch_wait.mean()));
    fields.push_back(format_number(svc.batch_wait_hist.percentile(99)));
    fields.push_back(format_number(svc.seq_wait.mean()));
    fields.push_back(format_number(svc.seq_wait_hist.percentile(99)));
    fields.push_back(format_number(svc.consensus.mean()));
    fields.push_back(format_number(svc.consensus_hist.percentile(99)));
  }
  if (opts.profile) {
    fields.push_back(
        format_number(static_cast<double>(r.profile.wall_ns) / 1e6));
    fields.push_back(
        format_number(static_cast<double>(r.profile.cpu_ns) / 1e6));
    fields.push_back(format_number(profile_msgs_per_sec(r.profile)));
  }
  w.row(fields);
}

}  // namespace

void write_cell_csv(std::ostream& out, const std::vector<CellResult>& results,
                    const ReportOptions& opts) {
  CsvWriter w(out);
  w.header(csv_header(opts));
  for (const auto& r : results) write_csv_row(w, r, opts);
}

std::vector<std::string> write_cell_csv_sharded(
    const std::string& path, const std::vector<CellResult>& results,
    std::size_t shard_size, const ReportOptions& opts) {
  HYCO_CHECK_MSG(shard_size >= 1, "CSV shard size must be >= 1");
  std::vector<std::string> shards;
  for (std::size_t begin = 0; begin == 0 || begin < results.size();
       begin += shard_size) {
    char suffix[8];
    std::snprintf(suffix, sizeof(suffix), ".%03zu", shards.size());
    const std::string shard_path = path + suffix;
    std::ofstream out(shard_path);
    HYCO_CHECK_MSG(out.good(),
                   "cannot open \"" << shard_path << "\" for writing");
    CsvWriter w(out);
    w.header(csv_header(opts));
    const std::size_t end = std::min(begin + shard_size, results.size());
    for (std::size_t i = begin; i < end; ++i) {
      write_csv_row(w, results[i], opts);
    }
    shards.push_back(shard_path);
  }
  return shards;
}

void write_cell_json(std::ostream& out, const std::string& experiment_name,
                     const std::vector<CellResult>& results,
                     const ReportOptions& opts) {
  out << "{\"experiment\":\"" << json_escape(experiment_name)
      << "\",\"cells\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i) out << ',';
    out << "{\"index\":" << r.cell.index << ",\"algorithm\":\""
        << to_cstring(r.cell.alg) << "\",\"n\":" << r.cell.layout.n()
        << ",\"m\":" << r.cell.layout.m() << ",\"layout\":\""
        << json_escape(r.cell.layout.to_string()) << "\",\"delay\":\""
        << json_escape(r.cell.delay.name) << "\",\"crash\":\""
        << json_escape(r.cell.crash.name) << "\",\"scenario\":\""
        << json_escape(r.cell.scenario.name)
        << "\",\"coin_epsilon\":" << format_number(r.cell.coin_epsilon)
        << ",\"inputs\":\"" << to_cstring(r.cell.inputs)
        << "\",\"base_seed\":" << r.cell.base_seed << ",\"runs\":" << r.runs()
        << ",\"terminated\":" << r.terminated()
        << ",\"violations\":" << r.violations() << ',';
    write_summary_json(out, "rounds", r.rounds());
    out << ',';
    write_summary_json(out, "msgs", r.msgs());
    out << ',';
    write_summary_json(out, "shm_proposals", r.shm_proposals());
    out << ',';
    write_summary_json(out, "consensus_objects", r.objects());
    out << ',';
    write_summary_json(out, "decision_time", r.decision_time());
    if (opts.net_stats) {
      out << ",\"net\":{";
      for (std::size_t k = 0; k < 5; ++k) {
        if (k) out << ',';
        out << '"' << obs::obs_id_name(kNetCounterIds[k])
            << "\":" << r.obs().sum(kNetCounterIds[k]);
      }
      out << '}';
    }
    if (opts.phase_metrics) {
      out << ",\"obs\":{";
      const ExactMoments& cf = r.obs().moments(obs::ObsId::kCoinFlips);
      out << "\"coin_flips\":{\"count\":" << cf.count()
          << ",\"mean\":" << format_number(cf.mean())
          << ",\"sd\":" << format_number(cf.stddev())
          << ",\"min\":" << format_number(cf.min())
          << ",\"max\":" << format_number(cf.max()) << '}';
      for (const obs::ObsId id : kLatencyIds) {
        const ExactMoments& mo = r.obs().moments(id);
        const obs::LogHistogram& hist = r.obs().histogram(id);
        out << ",\"" << obs::obs_id_name(id)
            << "\":{\"count\":" << mo.count()
            << ",\"mean\":" << format_number(mo.mean())
            << ",\"sd\":" << format_number(mo.stddev())
            << ",\"min\":" << format_number(mo.min())
            << ",\"p50\":" << format_number(hist.percentile(50))
            << ",\"p95\":" << format_number(hist.percentile(95))
            << ",\"max\":" << format_number(mo.max()) << '}';
      }
      out << '}';
    }
    if (opts.service) {
      const ServiceAgg& svc = r.acc.svc;
      out << ",\"svc\":{\"name\":\""
          << json_escape(r.cell.service.enabled ? r.cell.service.name
                                                : "none")
          << "\",\"runs\":" << svc.active_runs << ',';
      write_summary_json(out, "ops", svc.ops);
      out << ',';
      write_summary_json(out, "ops_per_sec", svc.rate);
      out << ',';
      write_summary_json(out, "batches", svc.batches);
      out << ',';
      write_summary_json(out, "slots", svc.slots);
      out << ",\"latency_ns\":{\"count\":" << svc.latency.count()
          << ",\"mean\":" << format_number(svc.latency.mean())
          << ",\"sd\":" << format_number(svc.latency.stddev())
          << ",\"min\":" << format_number(svc.latency.min())
          << ",\"p50\":" << format_number(svc.latency_hist.percentile(50))
          << ",\"p99\":" << format_number(svc.latency_hist.percentile(99))
          << ",\"p999\":" << format_number(svc.latency_hist.percentile(99.9))
          << ",\"max\":" << format_number(svc.latency.max()) << '}';
      const struct {
        const char* name;
        const ExactMoments* mo;
        const obs::LogHistogram* hist;
      } comps[3] = {
          {"batch_wait_ns", &svc.batch_wait, &svc.batch_wait_hist},
          {"seq_wait_ns", &svc.seq_wait, &svc.seq_wait_hist},
          {"consensus_ns", &svc.consensus, &svc.consensus_hist},
      };
      for (const auto& c : comps) {
        out << ",\"" << c.name << "\":{\"count\":" << c.mo->count()
            << ",\"mean\":" << format_number(c.mo->mean())
            << ",\"p50\":" << format_number(c.hist->percentile(50))
            << ",\"p99\":" << format_number(c.hist->percentile(99))
            << ",\"p999\":" << format_number(c.hist->percentile(99.9))
            << ",\"max\":" << format_number(c.mo->max()) << '}';
      }
      out << '}';
    }
    if (opts.profile) {
      out << ",\"profile\":{\"wall_ms\":"
          << format_number(static_cast<double>(r.profile.wall_ns) / 1e6)
          << ",\"cpu_ms\":"
          << format_number(static_cast<double>(r.profile.cpu_ns) / 1e6)
          << ",\"msgs_per_sec\":"
          << format_number(profile_msgs_per_sec(r.profile))
          << ",\"chunks\":" << r.profile.chunks << '}';
    }
    out << ",\"failures\":[";
    for (std::size_t f = 0; f < r.failures().size(); ++f) {
      const auto& fail = r.failures()[f];
      if (f) out << ',';
      out << "{\"run\":" << fail.run << ",\"seed\":" << fail.seed
          << ",\"terminated\":" << (fail.terminated ? "true" : "false")
          << ",\"safe\":" << (fail.safe_ok ? "true" : "false") << '}';
    }
    out << "]}";
  }
  out << "]}\n";
}

Table to_table(const std::string& title,
               const std::vector<CellResult>& results) {
  Table t(title);
  t.set_columns({"cell", "terminated", "violations", "mean rounds",
                 "p95 rounds", "mean msgs", "mean simtime"});
  for (const auto& r : results) {
    t.add_row_values(r.cell.label(),
                     std::to_string(r.terminated()) + "/" +
                         std::to_string(r.runs()),
                     r.violations(), fixed(r.rounds().mean()),
                     fixed(r.rounds().percentile(95)),
                     fixed(r.msgs().mean(), 0),
                     fixed(r.decision_time().mean(), 0));
  }
  return t;
}

}  // namespace hyco
