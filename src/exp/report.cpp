#include "exp/report.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/assert.h"
#include "util/csv.h"

namespace hyco {

std::string format_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no Inf/NaN literals
  char buf[64];
  // std::to_chars emits the shortest representation that round-trips —
  // locale-free, so identical on every run.
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void append_summary_fields(std::vector<std::string>& fields,
                           const MetricStats& s) {
  fields.push_back(format_number(s.mean()));
  fields.push_back(format_number(s.percentile(50)));
  fields.push_back(format_number(s.percentile(95)));
  fields.push_back(format_number(s.max()));
}

void write_summary_json(std::ostream& out, const char* key,
                        const MetricStats& s) {
  out << '"' << key << "\":{\"count\":" << s.count()
      << ",\"mean\":" << format_number(s.mean())
      << ",\"sd\":" << format_number(s.stddev())
      << ",\"min\":" << format_number(s.min())
      << ",\"p50\":" << format_number(s.percentile(50))
      << ",\"p95\":" << format_number(s.percentile(95))
      << ",\"max\":" << format_number(s.max()) << '}';
}

const std::vector<std::string>& csv_header() {
  static const std::vector<std::string> kHeader{
      "cell", "algorithm", "n", "m", "layout", "delay", "crash",
      "scenario", "coin_epsilon", "runs", "terminated", "violations",
      "rounds_mean", "rounds_p50", "rounds_p95", "rounds_max",
      "msgs_mean", "msgs_p50", "msgs_p95", "msgs_max",
      "shm_proposals_mean", "shm_proposals_p50", "shm_proposals_p95",
      "shm_proposals_max", "objects_mean", "objects_p50", "objects_p95",
      "objects_max", "decision_time_mean", "decision_time_p50",
      "decision_time_p95", "decision_time_max"};
  return kHeader;
}

void write_csv_row(CsvWriter& w, const CellResult& r) {
  std::vector<std::string> fields;
  fields.push_back(std::to_string(r.cell.index));
  fields.emplace_back(to_cstring(r.cell.alg));
  fields.push_back(std::to_string(r.cell.layout.n()));
  fields.push_back(std::to_string(r.cell.layout.m()));
  fields.push_back(r.cell.layout.to_string());
  fields.push_back(r.cell.delay.name);
  fields.push_back(r.cell.crash.name);
  fields.push_back(r.cell.scenario.name);
  fields.push_back(format_number(r.cell.coin_epsilon));
  fields.push_back(std::to_string(r.runs()));
  fields.push_back(std::to_string(r.terminated()));
  fields.push_back(std::to_string(r.violations()));
  append_summary_fields(fields, r.rounds());
  append_summary_fields(fields, r.msgs());
  append_summary_fields(fields, r.shm_proposals());
  append_summary_fields(fields, r.objects());
  append_summary_fields(fields, r.decision_time());
  w.row(fields);
}

}  // namespace

void write_cell_csv(std::ostream& out,
                    const std::vector<CellResult>& results) {
  CsvWriter w(out);
  w.header(csv_header());
  for (const auto& r : results) write_csv_row(w, r);
}

std::vector<std::string> write_cell_csv_sharded(
    const std::string& path, const std::vector<CellResult>& results,
    std::size_t shard_size) {
  HYCO_CHECK_MSG(shard_size >= 1, "CSV shard size must be >= 1");
  std::vector<std::string> shards;
  for (std::size_t begin = 0; begin == 0 || begin < results.size();
       begin += shard_size) {
    char suffix[8];
    std::snprintf(suffix, sizeof(suffix), ".%03zu", shards.size());
    const std::string shard_path = path + suffix;
    std::ofstream out(shard_path);
    HYCO_CHECK_MSG(out.good(),
                   "cannot open \"" << shard_path << "\" for writing");
    CsvWriter w(out);
    w.header(csv_header());
    const std::size_t end = std::min(begin + shard_size, results.size());
    for (std::size_t i = begin; i < end; ++i) write_csv_row(w, results[i]);
    shards.push_back(shard_path);
  }
  return shards;
}

void write_cell_json(std::ostream& out, const std::string& experiment_name,
                     const std::vector<CellResult>& results) {
  out << "{\"experiment\":\"" << json_escape(experiment_name)
      << "\",\"cells\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i) out << ',';
    out << "{\"index\":" << r.cell.index << ",\"algorithm\":\""
        << to_cstring(r.cell.alg) << "\",\"n\":" << r.cell.layout.n()
        << ",\"m\":" << r.cell.layout.m() << ",\"layout\":\""
        << json_escape(r.cell.layout.to_string()) << "\",\"delay\":\""
        << json_escape(r.cell.delay.name) << "\",\"crash\":\""
        << json_escape(r.cell.crash.name) << "\",\"scenario\":\""
        << json_escape(r.cell.scenario.name)
        << "\",\"coin_epsilon\":" << format_number(r.cell.coin_epsilon)
        << ",\"inputs\":\"" << to_cstring(r.cell.inputs)
        << "\",\"base_seed\":" << r.cell.base_seed << ",\"runs\":" << r.runs()
        << ",\"terminated\":" << r.terminated()
        << ",\"violations\":" << r.violations() << ',';
    write_summary_json(out, "rounds", r.rounds());
    out << ',';
    write_summary_json(out, "msgs", r.msgs());
    out << ',';
    write_summary_json(out, "shm_proposals", r.shm_proposals());
    out << ',';
    write_summary_json(out, "consensus_objects", r.objects());
    out << ',';
    write_summary_json(out, "decision_time", r.decision_time());
    out << ",\"failures\":[";
    for (std::size_t f = 0; f < r.failures().size(); ++f) {
      const auto& fail = r.failures()[f];
      if (f) out << ',';
      out << "{\"run\":" << fail.run << ",\"seed\":" << fail.seed
          << ",\"terminated\":" << (fail.terminated ? "true" : "false")
          << ",\"safe\":" << (fail.safe_ok ? "true" : "false") << '}';
    }
    out << "]}";
  }
  out << "]}\n";
}

Table to_table(const std::string& title,
               const std::vector<CellResult>& results) {
  Table t(title);
  t.set_columns({"cell", "terminated", "violations", "mean rounds",
                 "p95 rounds", "mean msgs", "mean simtime"});
  for (const auto& r : results) {
    t.add_row_values(r.cell.label(),
                     std::to_string(r.terminated()) + "/" +
                         std::to_string(r.runs()),
                     r.violations(), fixed(r.rounds().mean()),
                     fixed(r.rounds().percentile(95)),
                     fixed(r.msgs().mean(), 0),
                     fixed(r.decision_time().mean(), 0));
  }
  return t;
}

}  // namespace hyco
