// Report emitters for executed grids: RFC-4180 CSV (via util/csv) for
// spreadsheet/plotting pipelines and a self-contained JSON document for
// regression diffing. Both render only from CellResult aggregates, and both
// format numbers deterministically — two executions of the same spec (at
// any thread count) emit byte-identical documents.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "exp/sink.h"
#include "util/table.h"

namespace hyco {

/// One row per cell: axis labels, counts, and per-metric mean/p50/p95/max.
void write_cell_csv(std::ostream& out, const std::vector<CellResult>& results);

/// Sharded CSV for huge grids: writes `ceil(results / shard_size)` files
/// named "<path>.000", "<path>.001", … each with the full header and
/// `shard_size` cells in cell order. Returns the shard paths. Concatenating
/// the shards minus repeated headers reproduces write_cell_csv byte for
/// byte. Throws ContractViolation when a shard cannot be opened.
std::vector<std::string> write_cell_csv_sharded(
    const std::string& path, const std::vector<CellResult>& results,
    std::size_t shard_size);

/// {"experiment": ..., "cells": [...]} with a stats object per metric and
/// the failing seeds listed per cell (the replay work list survives into
/// the artifact).
void write_cell_json(std::ostream& out, const std::string& experiment_name,
                     const std::vector<CellResult>& results);

/// Renders an ASCII summary table (one row per cell) for quick terminal use.
[[nodiscard]] Table to_table(const std::string& title,
                             const std::vector<CellResult>& results);

/// Escapes a string for embedding in a JSON document (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest-round-trip double formatting ("17 significant digits max, no
/// locale"), shared by both emitters so documents stay byte-stable.
[[nodiscard]] std::string format_number(double v);

}  // namespace hyco
