// Report emitters for executed grids: RFC-4180 CSV (via util/csv) for
// spreadsheet/plotting pipelines and a self-contained JSON document for
// regression diffing. Both render only from CellResult aggregates, and both
// format numbers deterministically — two executions of the same spec (at
// any thread count) emit byte-identical documents.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "exp/sink.h"
#include "util/table.h"

namespace hyco {

/// Opt-in report sections. All default off, and the added columns/keys are
/// strictly appended, so documents emitted with the defaults are
/// byte-identical to pre-observability builds.
struct ReportOptions {
  /// Network scenario counters (delivered / dropped_* / duplicated /
  /// held_partitioned sums) per cell.
  bool net_stats = false;
  /// Per-phase latency metrics (coin flips, phase1/phase2/decide-spread ns)
  /// — meaningful when the spec ran with collect_obs.
  bool phase_metrics = false;
  /// Executor wall/CPU profile (wall_ms, cpu_ms, msgs_per_sec) — host
  /// timing, NOT deterministic; keep out of regression-diffed artifacts.
  bool profile = false;
  /// Replicated-service workload columns (decided ops, decided-ops/sec,
  /// client-latency p50/p99/p999, batches, slots) — meaningful when the
  /// grid has service cells.
  bool service = false;
};

/// One row per cell: axis labels, counts, and per-metric mean/p50/p95/max.
void write_cell_csv(std::ostream& out, const std::vector<CellResult>& results,
                    const ReportOptions& opts = {});

/// Sharded CSV for huge grids: writes `ceil(results / shard_size)` files
/// named "<path>.000", "<path>.001", … each with the full header and
/// `shard_size` cells in cell order. Returns the shard paths. Concatenating
/// the shards minus repeated headers reproduces write_cell_csv byte for
/// byte. Throws ContractViolation when a shard cannot be opened.
std::vector<std::string> write_cell_csv_sharded(
    const std::string& path, const std::vector<CellResult>& results,
    std::size_t shard_size, const ReportOptions& opts = {});

/// {"experiment": ..., "cells": [...]} with a stats object per metric and
/// the failing seeds listed per cell (the replay work list survives into
/// the artifact).
void write_cell_json(std::ostream& out, const std::string& experiment_name,
                     const std::vector<CellResult>& results,
                     const ReportOptions& opts = {});

/// Renders an ASCII summary table (one row per cell) for quick terminal use.
[[nodiscard]] Table to_table(const std::string& title,
                             const std::vector<CellResult>& results);

/// Escapes a string for embedding in a JSON document (quotes not included).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest-round-trip double formatting ("17 significant digits max, no
/// locale"), shared by both emitters so documents stay byte-stable.
[[nodiscard]] std::string format_number(double v);

}  // namespace hyco
