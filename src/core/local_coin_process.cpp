#include "core/local_coin_process.h"

#include <algorithm>

#include "util/assert.h"

namespace hyco {

LocalCoinProcess::LocalCoinProcess(ProcId self, const ClusterLayout& layout,
                                   INetwork& net, ClusterMemory& memory,
                                   std::uint64_t coin_seed,
                                   InvariantChecker* checker,
                                   Round max_rounds)
    : ProcessBase(self, layout, net, checker, max_rounds), memory_(memory),
      coin_(coin_seed) {
  HYCO_CHECK_MSG(memory.cluster() == layout.cluster_of(self),
                 "p" << self << " wired to MEM_" << memory.cluster()
                     << " but belongs to P[" << layout.cluster_of(self)
                     << ']');
  est1_ = Estimate::Bot;
}

void LocalCoinProcess::enter_round() {
  if (round_ == 0) est1_ = proposal_;  // line 1: est1 ← v_i
  if (maybe_park()) return;
  ++round_;
  ++stats_.rounds_entered;
  HYCO_CHECK_MSG(is_binary(est1_), "entering round with est1=⊥ on p" << self_);
  // Phase 1, line 4: locally agree on est1 inside the cluster.
  ++stats_.cons_invocations;
  est1_ = memory_.cons(round_, Phase::One).propose(self_, est1_);
  if (checker_ != nullptr) checker_->on_est1(self_, round_, est1_);
  // Line 5: exchange across all clusters.
  begin_exchange(round_, Phase::One, est1_);
}

void LocalCoinProcess::on_exchange_progress() {
  while (!decided() && !parked() && exch_.active() && exch_.satisfied()) {
    if (exch_.phase() == Phase::One) {
      complete_phase1();
    } else {
      complete_phase2();
    }
  }
}

void LocalCoinProcess::complete_phase1() {
  // Lines 6-7: champion a majority-supported value, or ⊥.
  est2_ = Estimate::Bot;
  for (const Estimate v : {Estimate::Zero, Estimate::One}) {
    if (2 * exch_.support(v) > layout_.n()) {
      est2_ = v;
      break;
    }
  }
  // Phase 2, line 8: locally agree on est2 inside the cluster.
  ++stats_.cons_invocations;
  est2_ = memory_.cons(round_, Phase::Two).propose(self_, est2_);
  if (checker_ != nullptr) checker_->on_est2(self_, round_, est2_);
  // Line 9: exchange the championed value.
  begin_exchange(round_, Phase::Two, est2_);
}

void LocalCoinProcess::complete_phase2() {
  // Line 10: rec = distinct est2 values credited during this phase.
  const auto rec = exch_.values_received();
  if (checker_ != nullptr) checker_->on_rec(self_, round_, rec);

  const bool has_bot =
      std::find(rec.begin(), rec.end(), Estimate::Bot) != rec.end();
  Estimate v = Estimate::Bot;
  for (const Estimate e : rec) {
    if (is_binary(e)) {
      v = e;
      break;
    }
  }

  if (is_binary(v) && !has_bot) {
    // Line 12: rec = {v} — decide (DECIDE gossip happens inside decide()).
    decide(v);
  } else if (is_binary(v) && has_bot) {
    // Line 13: rec = {v, ⊥} — adopt v so no other value can win later.
    est1_ = v;
    enter_round();
  } else {
    // Line 14: rec = {⊥} — break symmetry with the local coin.
    ++stats_.coin_flips;
    est1_ = estimate_from_bit(coin_.flip_counted());
    enter_round();
  }
}

}  // namespace hyco
