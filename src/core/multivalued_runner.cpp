#include "core/multivalued_runner.h"

#include <algorithm>

#include "util/assert.h"
#include "util/rng.h"

namespace hyco {

MultiRunResult run_multivalued(const MultiRunConfig& cfg) {
  const ProcId n = cfg.layout.n();
  HYCO_CHECK_MSG(cfg.width >= 1 && cfg.width <= 64, "bad width");

  std::vector<std::uint64_t> inputs = cfg.inputs;
  if (inputs.empty()) {
    Rng rng(mix64(cfg.seed, 0x3A1E));
    inputs.resize(static_cast<std::size_t>(n));
    const std::uint64_t mask = cfg.width == 64
                                   ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << cfg.width) - 1;
    for (auto& v : inputs) v = rng.next_u64() & mask;
  }
  HYCO_CHECK_MSG(inputs.size() == static_cast<std::size_t>(n),
                 "inputs size mismatch");

  Simulator sim(cfg.seed);
  sim.reserve_all_to_all(n);
  CrashPlan plan = cfg.crashes;
  if (plan.specs.empty()) plan = CrashPlan::none(static_cast<std::size_t>(n));
  CrashTracker tracker(static_cast<std::size_t>(n));
  auto delays = make_delay_model(cfg.delays);
  SimNetwork net(sim, *delays, tracker, n, &plan, nullptr);

  MemoryPool pool(n, cfg.shm_impl);
  CommonCoin coin(mix64(cfg.seed, 0xC01C02));

  std::vector<std::unique_ptr<MultiValuedProcess>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<MultiValuedProcess>(
        p, cfg.layout, net, pool, coin, cfg.width, cfg.max_rounds_per_bit));
  }

  net.set_deliver([&](ProcId to, ProcId from, const Message& m) {
    procs[static_cast<std::size_t>(to)]->on_message(from, m);
  });

  for (ProcId p = 0; p < n; ++p) {
    const CrashSpec& spec = plan.specs[static_cast<std::size_t>(p)];
    if (spec.kind == CrashSpec::Kind::AtTime) {
      if (spec.time <= 0) {
        tracker.crash(p, 0);
      } else {
        sim.schedule_at(spec.time, [&tracker, p, t = spec.time] {
          tracker.crash(p, t);
        });
      }
    }
  }
  Rng start_rng(mix64(cfg.seed, 0x57A7));
  for (ProcId p = 0; p < n; ++p) {
    sim.schedule_at(start_rng.uniform(0, 50), [&, p] {
      if (tracker.is_crashed(p)) return;
      procs[static_cast<std::size_t>(p)]->start(
          inputs[static_cast<std::size_t>(p)]);
    });
  }

  MultiRunResult result;
  result.stop = sim.run(cfg.max_events);
  result.end_time = sim.now();
  result.events = sim.events_executed();
  result.crashed = tracker.crashed_count();
  result.decisions.assign(static_cast<std::size_t>(n), std::nullopt);

  bool all_correct_decided = true;
  for (ProcId p = 0; p < n; ++p) {
    const auto& proc = *procs[static_cast<std::size_t>(p)];
    const auto idx = static_cast<std::size_t>(p);
    if (proc.decided()) {
      result.decisions[idx] = proc.decision();
      if (!result.decided_value.has_value()) {
        result.decided_value = proc.decision();
      } else if (*result.decided_value != *proc.decision()) {
        result.agreement_ok = false;
      }
    } else if (!tracker.is_crashed(p)) {
      all_correct_decided = false;
    }
  }
  result.all_correct_decided = all_correct_decided;
  if (result.decided_value.has_value()) {
    result.validity_ok = std::find(inputs.begin(), inputs.end(),
                                   *result.decided_value) != inputs.end();
  }
  result.shm = pool.total();
  result.consensus_objects = pool.objects_created();
  result.net = net.stats();
  return result;
}

}  // namespace hyco
