#include "core/multivalued.h"

#include "util/assert.h"
#include "util/log.h"

namespace hyco {

ClusterMemory& MemoryPool::get(InstanceId instance, ClusterId cluster) {
  const auto key = std::make_pair(instance, cluster);
  auto it = memories_.find(key);
  if (it == memories_.end()) {
    it = memories_
             .emplace(key,
                      std::make_unique<ClusterMemory>(cluster, n_, impl_))
             .first;
  }
  return *it->second;
}

ShmOpCounts MemoryPool::total() const {
  ShmOpCounts t;
  for (const auto& [key, mem] : memories_) t += mem->counts();
  return t;
}

std::uint64_t MemoryPool::objects_created() const {
  std::uint64_t t = 0;
  for (const auto& [key, mem] : memories_) t += mem->objects_created();
  return t;
}

MultiValuedProcess::MultiValuedProcess(ProcId self,
                                       const ClusterLayout& layout,
                                       INetwork& net, MemoryPool& pool,
                                       ICommonCoin& coin, int width,
                                       Round max_rounds_per_bit,
                                       InstanceId instance_base)
    : self_(self),
      layout_(layout),
      net_(net),
      pool_(pool),
      coin_(coin),
      width_(width),
      max_rounds_per_bit_(max_rounds_per_bit),
      instance_base_(instance_base),
      base_net_(net, instance_base),
      urb_seen_(static_cast<std::size_t>(layout.n())) {
  HYCO_CHECK_MSG(width >= 1 && width <= 64, "width must be in [1, 64]");
  HYCO_CHECK_MSG(instance_base >= 0, "instance base must be non-negative");
}

MultiValuedProcess::~MultiValuedProcess() = default;

bool MultiValuedProcess::matches_prefix(std::uint64_t v) const {
  if (bit_ == 0) return true;
  return (v >> (width_ - bit_)) == prefix_;
}

std::optional<std::uint64_t> MultiValuedProcess::min_matching_candidate()
    const {
  for (const std::uint64_t v : candidates_) {  // std::set: ascending
    if (matches_prefix(v)) return v;
  }
  return std::nullopt;
}

void MultiValuedProcess::start(std::uint64_t proposal) {
  HYCO_CHECK_MSG(!started_, "start() called twice on p" << self_);
  HYCO_CHECK_MSG(width_ == 64 || proposal < (std::uint64_t{1} << width_),
                 "proposal " << proposal << " does not fit in " << width_
                             << " bits");
  started_ = true;
  proposal_ = proposal;
  // Step 1: URB our own value. Our own delivery happens when the broadcast
  // loops back; seed the candidate set immediately so bit 0 can start.
  candidates_.insert(proposal);
  urb_seen_.set(static_cast<std::size_t>(self_));
  base_net_.broadcast(self_, Message::value_msg(self_, proposal));
  maybe_start_bit();
}

void MultiValuedProcess::urb_deliver(ProcId origin, std::uint64_t value) {
  const auto idx = static_cast<std::size_t>(origin);
  if (urb_seen_.test(idx)) return;
  urb_seen_.set(idx);
  // Relay before use: this is what makes the broadcast uniform-reliable —
  // if any process delivers, every correct process eventually does.
  base_net_.broadcast(self_, Message::value_msg(origin, value));
  candidates_.insert(value);
  if (!decided() && embedded_ == nullptr) maybe_start_bit();
}

void MultiValuedProcess::maybe_start_bit() {
  if (decided() || !started_ || bit_ >= width_ || embedded_ != nullptr) {
    return;
  }
  const auto cand = min_matching_candidate();
  if (!cand.has_value()) return;  // wait for URB to deliver a matching value

  const InstanceId inst = instance_base_ + 1 + bit_;
  inst_net_ = std::make_unique<InstanceNetwork>(net_, inst);
  embedded_ = std::make_unique<CommonCoinProcess>(
      self_, layout_, *inst_net_,
      pool_.get(inst, layout_.cluster_of(self_)), coin_,
      /*checker=*/nullptr, max_rounds_per_bit_);
  const int b = static_cast<int>((*cand >> (width_ - 1 - bit_)) & 1U);
  embedded_->start(estimate_from_bit(b));
  // Replay any messages that arrived before this instance existed (the
  // backlog is keyed by bit index).
  const auto it = backlog_.find(bit_);
  if (it != backlog_.end()) {
    for (const auto& [from, m] : it->second) {
      embedded_->on_message(from, m);
      if (embedded_ == nullptr || decided()) return;  // advanced inside poll
    }
    if (embedded_ != nullptr) poll_embedded();
  }
  poll_embedded();
}

void MultiValuedProcess::poll_embedded() {
  // Advance over as many decided bits as possible (several instances may
  // complete back-to-back out of the backlog).
  while (!decided() && embedded_ != nullptr && embedded_->decided()) {
    const int b = estimate_to_bit(*embedded_->decision());
    prefix_ = (prefix_ << 1) | static_cast<std::uint64_t>(b);
    ++bit_;
    embedded_.reset();
    inst_net_.reset();
    if (bit_ == width_) {
      decide_multi(prefix_);
      return;
    }
    maybe_start_bit();  // may immediately complete from backlog again
  }
}

void MultiValuedProcess::decide_multi(std::uint64_t value) {
  if (decided()) return;
  HYCO_DEBUG("p" << self_ << " multi-decides " << value);
  base_net_.broadcast(self_, Message::multi_decide_msg(value));
  decision_ = value;
}

void MultiValuedProcess::on_message(ProcId from, const Message& m) {
  switch (m.kind) {
    case MsgKind::Value:
      if (m.instance != instance_base_) return;  // another multiplexed run's
      // URB relaying must continue even after deciding, so that slow
      // processes still converge on their candidate sets.
      urb_deliver(m.origin, m.value);
      return;
    case MsgKind::MultiDecide:
      if (m.instance != instance_base_) return;
      if (!decided()) decide_multi(m.value);
      return;
    case MsgKind::Phase:
    case MsgKind::Decide:
      break;
    default:
      return;  // register traffic etc. — not ours
  }
  if (decided()) return;

  // Binary traffic of bit index (instance - base - 1).
  const InstanceId rel = m.instance - instance_base_ - 1;
  if (rel < 0 || rel >= width_) return;  // not ours (other multiplexed runs)
  if (rel < bit_) return;                // already decided that bit
  if (rel > bit_ || embedded_ == nullptr) {
    backlog_[rel].emplace_back(from, m);
    // A DECIDE for the current bit may arrive before we can start it (no
    // matching candidate yet): it is replayed in maybe_start_bit().
    return;
  }
  embedded_->on_message(from, m);
  poll_embedded();
}

}  // namespace hyco
