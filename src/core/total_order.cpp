#include "core/total_order.h"

#include "util/assert.h"
#include "util/log.h"

namespace hyco {

TobProcess::TobProcess(ProcId self, const ClusterLayout& layout,
                       INetwork& net, MemoryPool& pool, ICommonCoin& coin,
                       Round max_rounds_per_bit, int width)
    : self_(self),
      layout_(layout),
      net_(net),
      pool_(pool),
      coin_(coin),
      max_rounds_per_bit_(max_rounds_per_bit),
      width_(width) {
  HYCO_CHECK_MSG(width >= 1 && width <= 64, "TOB width must be in [1, 64]");
}

void TobProcess::submit(std::uint64_t payload) {
  HYCO_CHECK_MSG(payload != kNoop, "payload 0 is reserved for NOOP");
  HYCO_CHECK_MSG(width_ == 64 || (payload >> width_) == 0,
                 "TOB payload does not fit the configured width");
  gossip(self_, payload);
  maybe_start_slot(/*saw_traffic=*/false);
}

void TobProcess::gossip(ProcId origin, std::uint64_t payload) {
  if (payload == kNoop) return;
  if (known_.count(payload) > 0) return;
  known_.insert(payload);
  // Relay-on-first-receipt: uniform-reliable dissemination.
  Message m = Message::value_msg(origin, payload);
  m.kind = MsgKind::TobSubmit;
  net_.broadcast(self_, m);
  if (delivered_set_.count(payload) == 0) pending_.insert(payload);
}

void TobProcess::maybe_start_slot(bool saw_traffic) {
  if (current_ != nullptr) return;
  // Participate when we have something to order, or when someone else is
  // already running this slot (then we contribute a NOOP so the quorum
  // machinery has all live processes on board).
  if (pending_.empty() && !saw_traffic) return;
  current_ = std::make_unique<MultiValuedProcess>(
      self_, layout_, net_, pool_, coin_, width_, max_rounds_per_bit_,
      slot_base(slot_));
  if (slot_start_hook_) slot_start_hook_(slot_);
  const std::uint64_t proposal =
      pending_.empty() ? kNoop : *pending_.begin();
  current_->start(proposal);
  const auto it = slot_backlog_.find(slot_);
  if (it != slot_backlog_.end()) {
    for (const auto& [from, m] : it->second) {
      current_->on_message(from, m);
      if (current_ == nullptr) return;  // slot finished inside poll path
    }
    slot_backlog_.erase(slot_);
  }
  poll_slot();
}

void TobProcess::poll_slot() {
  while (current_ != nullptr && current_->decided()) {
    const std::uint64_t decided = *current_->decision();
    current_.reset();
    if (deliver_hook_) deliver_hook_(slot_, decided);
    if (decided != kNoop && delivered_set_.count(decided) == 0) {
      delivered_set_.insert(decided);
      log_.push_back(decided);
      HYCO_DEBUG("p" << self_ << " TOB-delivers " << decided << " at slot "
                     << slot_);
    }
    pending_.erase(decided);
    ++slot_;
    const bool traffic_waiting = slot_backlog_.count(slot_) > 0;
    maybe_start_slot(traffic_waiting);
  }
}

void TobProcess::on_message(ProcId from, const Message& m) {
  if (m.kind == MsgKind::TobSubmit) {
    gossip(m.origin, m.value);
    maybe_start_slot(/*saw_traffic=*/false);
    return;
  }
  if (m.kind == MsgKind::RegQuery || m.kind == MsgKind::RegStore ||
      m.kind == MsgKind::RegAck) {
    return;  // not ours
  }

  const int slot = slot_of_instance(m.instance);
  if (slot < slot_) return;  // finished slots are settled
  if (slot > slot_ || current_ == nullptr) {
    slot_backlog_[slot].emplace_back(from, m);
    if (slot == slot_) {
      // Someone is already running our next slot: join with a NOOP if we
      // have nothing pending (replays the backlog, including this msg).
      maybe_start_slot(/*saw_traffic=*/true);
    }
    return;
  }
  current_->on_message(from, m);
  poll_slot();
}

}  // namespace hyco
