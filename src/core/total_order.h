// Total-order broadcast (the consensus application par excellence — state
// machine replication) built on REPEATED multivalued consensus over the
// hybrid model: slot s of the log is decided by the s-th multivalued
// instance, all multiplexed over one network via disjoint instance-id
// blocks. A third answer to the paper's closing question about "other
// distributed computing problems" on the hybrid communication model.
//
// Protocol:
//  * submit(payload): gossip the payload (TOBSUBMIT, relayed once by every
//    receiver — uniform-reliable), add it to the local pending set;
//  * while the pending set is non-empty, run the next slot's multivalued
//    consensus proposing the smallest pending payload; processes with
//    nothing pending join in with a NOOP proposal as soon as they see slot
//    traffic (so the one-for-all quorum machinery always has its
//    participants);
//  * a decided payload is appended to the log (NOOPs are skipped) and
//    removed from pending everywhere.
//
// Guarantees (inherited from consensus agreement per slot): all processes
// deliver the same log prefix, every payload submitted by a correct
// process is eventually delivered, and fault tolerance is again the
// paper's covering-cluster-set condition.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "coin/coin.h"
#include "core/cluster_layout.h"
#include "core/multivalued.h"
#include "net/network.h"

namespace hyco {

/// One process of the total-order broadcast.
class TobProcess {
 public:
  /// Payload value 0 is reserved as the NOOP filler.
  static constexpr std::uint64_t kNoop = 0;

  /// Called once per decided slot, in slot order, NOOP slots included —
  /// the hook a replicated state machine needs to both apply decided
  /// values and verify gap-free sequencing.
  using DeliverHook = std::function<void(int slot, std::uint64_t payload)>;

  /// `width` is the payload bit width of every slot's multivalued instance
  /// (default 64 — the historical behavior). Narrow widths make slots far
  /// cheaper: each slot runs `width` embedded binary consensus instances,
  /// so a service layer whose payloads are small sequential batch ids
  /// should size the width to them.
  TobProcess(ProcId self, const ClusterLayout& layout, INetwork& net,
             MemoryPool& pool, ICommonCoin& coin, Round max_rounds_per_bit,
             int width = 64);

  TobProcess(const TobProcess&) = delete;
  TobProcess& operator=(const TobProcess&) = delete;

  /// Submits a payload for total-order delivery (must be nonzero, unique
  /// across the run, and fit in `width` bits). May be called at any time,
  /// repeatedly.
  void submit(std::uint64_t payload);

  void on_message(ProcId from, const Message& m);

  /// Installs the per-slot delivery hook (see DeliverHook).
  void set_deliver_hook(DeliverHook hook) { deliver_hook_ = std::move(hook); }

  /// Called when this process starts participating in a slot's consensus
  /// (its multivalued instance is created). Strictly observational — the
  /// service layer uses it to attribute client latency to queueing vs
  /// consensus, and the trace records a SvcSlot milestone.
  using SlotStartHook = std::function<void(int slot)>;
  void set_slot_start_hook(SlotStartHook hook) {
    slot_start_hook_ = std::move(hook);
  }

  /// The totally ordered log delivered so far (NOOPs skipped).
  [[nodiscard]] const std::vector<std::uint64_t>& delivered() const {
    return log_;
  }
  /// Payloads known but not yet delivered here.
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }
  [[nodiscard]] int current_slot() const { return slot_; }

 private:
  /// Instances reserved per slot: 1 (VALUE/MULTIDECIDE) + width bit
  /// instances.
  [[nodiscard]] InstanceId stride() const {
    return static_cast<InstanceId>(width_) + 1;
  }
  [[nodiscard]] InstanceId slot_base(int slot) const {
    return static_cast<InstanceId>(slot) * stride();
  }
  [[nodiscard]] int slot_of_instance(InstanceId inst) const {
    return static_cast<int>(inst / stride());
  }

  void gossip(ProcId origin, std::uint64_t payload);
  void maybe_start_slot(bool saw_traffic);
  void poll_slot();

  ProcId self_;
  const ClusterLayout& layout_;
  INetwork& net_;
  MemoryPool& pool_;
  ICommonCoin& coin_;
  Round max_rounds_per_bit_;
  int width_;
  DeliverHook deliver_hook_;
  SlotStartHook slot_start_hook_;

  std::set<std::uint64_t> known_;      ///< every payload ever gossiped
  std::set<std::uint64_t> pending_;    ///< known but not delivered
  std::set<std::uint64_t> delivered_set_;
  std::vector<std::uint64_t> log_;

  int slot_ = 0;
  std::unique_ptr<MultiValuedProcess> current_;
  std::map<int, std::vector<std::pair<ProcId, Message>>> slot_backlog_;
};

}  // namespace hyco
