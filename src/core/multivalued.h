// Multivalued consensus from binary consensus — the paper's future-work
// direction ("it would be interesting to investigate the scalability
// benefits of the hybrid communication model for other distributed
// computing problems", Section V), built entirely on the paper's own
// primitives.
//
// Construction (bit-by-bit reduction, in the style of Mostéfaoui–Raynal):
//  1. Every process uniform-reliably broadcasts its W-bit proposal
//     (VALUE messages; URB = re-broadcast on first delivery, so any value
//     delivered anywhere is eventually delivered by every correct process).
//  2. Bits are decided MSB-first by W sequential instances of the hybrid
//     common-coin binary consensus (Algorithm 3), multiplexed over the same
//     network via per-message instance ids. At bit k a process proposes
//     bit k of the SMALLEST delivered candidate matching the k-bit decided
//     prefix — so every decided bit is the bit of some URB-delivered value
//     matching the prefix, and by induction the decided W-bit string IS a
//     proposed value (validity). A process with no matching candidate
//     simply waits: the matching value is URB-delivered eventually.
//  3. The decided bitstring is the decision; MULTIDECIDE gossip (plus the
//     embedded per-bit DECIDE gossip) lets stragglers catch up after the
//     fast majority has returned.
//
// Fault tolerance is inherited unchanged: the one-for-all property holds
// per embedded instance, so multivalued consensus also survives a majority
// of crashes whenever a covering set of clusters keeps one live process.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "coin/coin.h"
#include "core/cluster_layout.h"
#include "core/common_coin_process.h"
#include "net/network.h"
#include "shm/cluster_memory.h"

namespace hyco {

/// INetwork adapter that stamps a fixed instance id on all outgoing
/// traffic, so embedded binary instances can share one physical network.
class InstanceNetwork final : public INetwork {
 public:
  InstanceNetwork(INetwork& inner, InstanceId instance)
      : inner_(inner), instance_(instance) {}

  void send(ProcId from, ProcId to, const Message& m) override {
    Message stamped = m;
    stamped.instance = instance_;
    inner_.send(from, to, stamped);
  }
  void broadcast(ProcId from, const Message& m) override {
    Message stamped = m;
    stamped.instance = instance_;
    inner_.broadcast(from, stamped);
  }
  [[nodiscard]] ProcId n() const override { return inner_.n(); }

 private:
  INetwork& inner_;
  InstanceId instance_;
};

/// Lazily materialized cluster memories, one MEM_x per (instance, cluster):
/// each embedded binary instance gets fresh CONS arrays.
class MemoryPool {
 public:
  MemoryPool(ProcId n, ConsensusImpl impl) : n_(n), impl_(impl) {}

  ClusterMemory& get(InstanceId instance, ClusterId cluster);

  [[nodiscard]] ShmOpCounts total() const;
  [[nodiscard]] std::uint64_t objects_created() const;

 private:
  ProcId n_;
  ConsensusImpl impl_;
  std::map<std::pair<InstanceId, ClusterId>, std::unique_ptr<ClusterMemory>>
      memories_;
};

/// One process of the multivalued consensus. Event-driven like the binary
/// processes: the runner feeds every delivered message to on_message().
class MultiValuedProcess {
 public:
  /// `width` in [1, 64]: number of bits of the value domain. `pool` and
  /// `coin` are shared by all processes of the run. `instance_base`
  /// reserves the instance-id block [base, base + width] for this
  /// instance's traffic (VALUE/MULTIDECIDE at `base`, bit k at
  /// `base + 1 + k`), so several multivalued instances — e.g. the slots of
  /// the total-order broadcast — can share one network.
  MultiValuedProcess(ProcId self, const ClusterLayout& layout, INetwork& net,
                     MemoryPool& pool, ICommonCoin& coin, int width,
                     Round max_rounds_per_bit, InstanceId instance_base = 0);
  ~MultiValuedProcess();

  MultiValuedProcess(const MultiValuedProcess&) = delete;
  MultiValuedProcess& operator=(const MultiValuedProcess&) = delete;

  /// Proposes a W-bit value (must fit in `width` bits).
  void start(std::uint64_t proposal);

  void on_message(ProcId from, const Message& m);

  [[nodiscard]] bool decided() const { return decision_.has_value(); }
  [[nodiscard]] std::optional<std::uint64_t> decision() const {
    return decision_;
  }
  /// Bits decided so far (== width once decided).
  [[nodiscard]] int bits_decided() const { return bit_; }
  /// Candidate values URB-delivered so far.
  [[nodiscard]] const std::set<std::uint64_t>& candidates() const {
    return candidates_;
  }

 private:
  void urb_deliver(ProcId origin, std::uint64_t value);
  void maybe_start_bit();
  void poll_embedded();
  void decide_multi(std::uint64_t value);
  [[nodiscard]] bool matches_prefix(std::uint64_t v) const;
  [[nodiscard]] std::optional<std::uint64_t> min_matching_candidate() const;

  ProcId self_;
  const ClusterLayout& layout_;
  INetwork& net_;
  MemoryPool& pool_;
  ICommonCoin& coin_;
  int width_;
  Round max_rounds_per_bit_;
  InstanceId instance_base_;
  InstanceNetwork base_net_;  ///< stamps VALUE/MULTIDECIDE with the base id

  bool started_ = false;
  std::uint64_t proposal_ = 0;
  std::set<std::uint64_t> candidates_;
  DynamicBitset urb_seen_;  ///< origins whose VALUE we already relayed

  int bit_ = 0;                     ///< next bit index to decide
  std::uint64_t prefix_ = 0;        ///< decided bits, MSB-aligned low word
  std::unique_ptr<InstanceNetwork> inst_net_;
  std::unique_ptr<CommonCoinProcess> embedded_;
  std::map<InstanceId, std::vector<std::pair<ProcId, Message>>> backlog_;

  std::optional<std::uint64_t> decision_;
};

}  // namespace hyco
