// Online checker for the correctness properties the paper proves:
//
//  * Cluster consistency — after CONS_x[r,1], all members of a cluster hold
//    the same est1 (and likewise est2 after CONS_x[r,2]).
//  * WA1 (Section III-B): (est2_i ≠ ⊥) ∧ (est2_j ≠ ⊥) ⇒ est2_i = est2_j.
//  * WA2: rec_i = {v} and rec_j = {⊥} are mutually exclusive in a round,
//    and no rec set ever contains both binary values.
//  * Agreement — no two processes decide different values.
//  * Validity — the decided value was proposed by some process.
//
// Every simulation run in tests and benches installs a checker; a run is
// only "correct" if the checker ends with zero violations.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster_layout.h"
#include "core/types.h"

namespace hyco {

/// Collects protocol events and records any property violation as a
/// human-readable string. Thread-compatible (used single-threaded).
class InvariantChecker {
 public:
  explicit InvariantChecker(const ClusterLayout& layout);

  /// Proposed inputs, indexed by process; enables the validity check.
  void set_inputs(const std::vector<Estimate>& inputs);

  /// p's est1 value right after CONS_x[r,1] (must match cluster-mates).
  void on_est1(ProcId p, Round r, Estimate v);

  /// p's est2 value right after CONS_x[r,2] (cluster consistency + WA1).
  void on_est2(ProcId p, Round r, Estimate v);

  /// p's rec set at the end of phase 2 of round r (WA2).
  void on_rec(ProcId p, Round r, const std::vector<Estimate>& rec);

  /// p decided v in round r (agreement + validity).
  void on_decide(ProcId p, Round r, Estimate v);

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }

  /// First decided value, if any process decided.
  [[nodiscard]] std::optional<Estimate> decided_value() const {
    return decided_;
  }

 private:
  void violate(const std::string& what);
  void check_cluster_consistent(const char* tag, ProcId p, Round r,
                                Estimate v,
                                std::map<std::pair<Round, ClusterId>, Estimate>& seen);

  const ClusterLayout& layout_;
  std::vector<Estimate> inputs_;

  std::map<std::pair<Round, ClusterId>, Estimate> est1_by_cluster_;
  std::map<std::pair<Round, ClusterId>, Estimate> est2_by_cluster_;
  std::map<Round, Estimate> est2_nonbot_;       // WA1 witness per round
  std::map<Round, ProcId> rec_singleton_value_;  // some p with rec={v}
  std::map<Round, ProcId> rec_singleton_bot_;    // some p with rec={⊥}
  std::optional<Estimate> decided_;
  std::vector<std::string> violations_;
};

}  // namespace hyco
