// Uniform surface of every binary-consensus process implementation (the two
// hybrid algorithms, the pure message-passing Ben-Or baseline, and the m&m
// comparator), so the simulation runner can drive them interchangeably.
#pragma once

#include <cstdint>
#include <optional>

#include "core/types.h"
#include "net/message.h"

namespace hyco::obs {
class IRunObserver;
}  // namespace hyco::obs

namespace hyco {

/// Per-process instrumentation shared by all algorithm implementations.
struct ProcessStats {
  std::uint64_t cons_invocations = 0;   ///< consensus-object proposals
  std::uint64_t coin_flips = 0;         ///< local or common coin consultations
  std::uint64_t phase_msgs_handled = 0; ///< PHASE messages credited
  Round rounds_entered = 0;
};

/// Event-driven binary consensus participant.
class IConsensusProcess {
 public:
  virtual ~IConsensusProcess() = default;

  /// The paper's propose(v): records the proposal and enters round 1.
  virtual void start(Estimate proposal) = 0;

  /// Delivery hook for every message addressed to this process.
  virtual void on_message(ProcId from, const Message& m) = 0;

  /// Crash-recovery hook (src/scenario/): the process just rejoined with
  /// its state intact but missed every message delivered while it was
  /// down. Implementations retransmit whatever peers need to pull it back
  /// in (typically the active PHASE message or its DECIDE). Default: no-op.
  virtual void on_recover() {}

  /// Peer-rejoin announcement (the runner calls it on every process when
  /// `peer` recovers): replies previously sent to `peer` may have fallen
  /// into its down window, so per-peer reply bookkeeping must be reset.
  /// Default: no-op.
  virtual void on_peer_recover(ProcId /*peer*/) {}

  /// Enables the scenario-assist gossip that keeps faulty runs live:
  /// (a) decide replies — a decided process answers stale non-DECIDE
  /// messages with a targeted DECIDE; (b) catch-up replies — an undecided
  /// process answers a PHASE message for any (round, phase) it has begun
  /// by retransmitting its own message of that (round, phase), once per
  /// (peer, round, phase), so a rejoined or loss-starved process can
  /// recover what it missed. Off by default (the paper's algorithms don't need
  /// either under reliable channels; keeping them off preserves
  /// byte-identical legacy runs). Default: ignored.
  virtual void set_scenario_assist(bool /*on*/) {}

  /// Installs an out-of-band observer notified of phase entries and
  /// decisions (src/obs/ per-phase latency instrumentation). The observer
  /// must outlive the process; nullptr detaches. Observation never feeds
  /// back into algorithm state, so an instrumented run is byte-identical
  /// to an uninstrumented one. Default: ignored (baselines report zeros).
  virtual void set_observer(obs::IRunObserver* /*o*/) {}

  [[nodiscard]] virtual bool decided() const = 0;
  [[nodiscard]] virtual std::optional<Estimate> decision() const = 0;
  [[nodiscard]] virtual Round decision_round() const = 0;
  [[nodiscard]] virtual Round current_round() const = 0;
  /// True once the process hit its max-round cap and stopped advancing.
  [[nodiscard]] virtual bool parked() const = 0;
  [[nodiscard]] virtual const ProcessStats& stats() const = 0;
};

}  // namespace hyco
