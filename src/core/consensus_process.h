// Uniform surface of every binary-consensus process implementation (the two
// hybrid algorithms, the pure message-passing Ben-Or baseline, and the m&m
// comparator), so the simulation runner can drive them interchangeably.
#pragma once

#include <cstdint>
#include <optional>

#include "core/types.h"
#include "net/message.h"

namespace hyco {

/// Per-process instrumentation shared by all algorithm implementations.
struct ProcessStats {
  std::uint64_t cons_invocations = 0;   ///< consensus-object proposals
  std::uint64_t coin_flips = 0;         ///< local or common coin consultations
  std::uint64_t phase_msgs_handled = 0; ///< PHASE messages credited
  Round rounds_entered = 0;
};

/// Event-driven binary consensus participant.
class IConsensusProcess {
 public:
  virtual ~IConsensusProcess() = default;

  /// The paper's propose(v): records the proposal and enters round 1.
  virtual void start(Estimate proposal) = 0;

  /// Delivery hook for every message addressed to this process.
  virtual void on_message(ProcId from, const Message& m) = 0;

  [[nodiscard]] virtual bool decided() const = 0;
  [[nodiscard]] virtual std::optional<Estimate> decision() const = 0;
  [[nodiscard]] virtual Round decision_round() const = 0;
  [[nodiscard]] virtual Round current_round() const = 0;
  /// True once the process hit its max-round cap and stopped advancing.
  [[nodiscard]] virtual bool parked() const = 0;
  [[nodiscard]] virtual const ProcessStats& stats() const = 0;
};

}  // namespace hyco
