#include "core/process_base.h"

#include "util/assert.h"
#include "util/log.h"

namespace hyco {

ProcessBase::ProcessBase(ProcId self, const ClusterLayout& layout,
                         INetwork& net, InvariantChecker* checker,
                         Round max_rounds)
    : self_(self),
      layout_(layout),
      net_(net),
      checker_(checker),
      max_rounds_(max_rounds),
      exch_(layout, net, self) {
  HYCO_CHECK_MSG(self >= 0 && self < layout.n(), "bad process id " << self);
  HYCO_CHECK_MSG(max_rounds >= 1, "max_rounds must be >= 1");
}

void ProcessBase::start(Estimate proposal) {
  HYCO_CHECK_MSG(!started_, "start() called twice on p" << self_);
  HYCO_CHECK_MSG(is_binary(proposal), "proposals must be 0 or 1");
  started_ = true;
  proposal_ = proposal;
  round_ = 0;
  enter_round();
  // Early messages may already satisfy the first wait (e.g. n == 1).
  on_exchange_progress();
}

void ProcessBase::on_message(ProcId from, const Message& m) {
  if (decided()) return;  // a decided process has returned from propose()

  if (m.kind == MsgKind::Decide) {
    // Algorithm 2 line 17 / Algorithm 3 line 13: forward, then return.
    decide(m.est);
    return;
  }

  // PHASE message: remember it (we may not have reached (r, ph) yet), and
  // feed it to the active exchange if it matches.
  backlog_[{m.round, static_cast<int>(m.phase)}].emplace_back(from, m.est);
  if (!parked_ && started_ && exch_.active() && m.round == exch_.round() &&
      m.phase == exch_.phase()) {
    ++stats_.phase_msgs_handled;
    exch_.credit(from, m.est);
    on_exchange_progress();
  }
}

void ProcessBase::begin_exchange(Round r, Phase ph, Estimate est) {
  exch_.begin(r, ph, est);
  const auto it = backlog_.find({r, static_cast<int>(ph)});
  if (it != backlog_.end()) {
    for (const auto& [from, v] : it->second) {
      ++stats_.phase_msgs_handled;
      exch_.credit(from, v);
    }
  }
}

void ProcessBase::decide(Estimate v) {
  if (decided()) return;
  HYCO_CHECK_MSG(is_binary(v), "cannot decide ⊥");
  if (checker_ != nullptr) checker_->on_decide(self_, round_, v);
  HYCO_DEBUG("p" << self_ << " decides " << v << " at round " << round_);
  net_.broadcast(self_, Message::decide_msg(v));
  decision_ = v;
  decision_round_ = round_;
}

bool ProcessBase::maybe_park() {
  if (round_ >= max_rounds_) {
    parked_ = true;
    HYCO_DEBUG("p" << self_ << " parked at round cap " << max_rounds_);
    return true;
  }
  return false;
}

}  // namespace hyco
