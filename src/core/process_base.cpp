#include "core/process_base.h"

#include "obs/observer.h"
#include "util/assert.h"
#include "util/log.h"

namespace hyco {

ProcessBase::ProcessBase(ProcId self, const ClusterLayout& layout,
                         INetwork& net, InvariantChecker* checker,
                         Round max_rounds)
    : self_(self),
      layout_(layout),
      net_(net),
      checker_(checker),
      max_rounds_(max_rounds),
      exch_(layout, net, self) {
  HYCO_CHECK_MSG(self >= 0 && self < layout.n(), "bad process id " << self);
  HYCO_CHECK_MSG(max_rounds >= 1, "max_rounds must be >= 1");
}

void ProcessBase::start(Estimate proposal) {
  HYCO_CHECK_MSG(!started_, "start() called twice on p" << self_);
  HYCO_CHECK_MSG(is_binary(proposal), "proposals must be 0 or 1");
  started_ = true;
  proposal_ = proposal;
  round_ = 0;
  enter_round();
  // Early messages may already satisfy the first wait (e.g. n == 1).
  on_exchange_progress();
}

void ProcessBase::on_message(ProcId from, const Message& m) {
  if (decided()) {
    // A decided process has returned from propose(). Under scenarios
    // (recovery, loss) the sender may have missed the DECIDE broadcast;
    // when scenario assist is on, answer stale traffic with a targeted
    // DECIDE. PHASE messages only come from undecided processes, so each
    // sender triggers finitely many replies.
    if (assist_ && m.kind != MsgKind::Decide) {
      net_.send(self_, from, Message::decide_msg(*decision_));
    }
    return;
  }

  if (m.kind == MsgKind::Decide) {
    // Algorithm 2 line 17 / Algorithm 3 line 13: forward, then return.
    decide(m.est);
    return;
  }

  // PHASE message: remember it (we may not have reached (r, ph) yet), feed
  // it to the active exchange if it matches, and — under scenario assist —
  // answer with our own message of that (round, phase) in case the sender
  // missed the original (the reply happens before crediting, so a decision
  // made by the credit cannot swallow it; deciding broadcasts DECIDE
  // anyway).
  backlog_[{m.round, static_cast<int>(m.phase)}].emplace_back(from, m.est);
  if (assist_ && !parked_ && started_) maybe_catchup_reply(from, m);
  if (!parked_ && started_ && exch_.active() && m.round == exch_.round() &&
      m.phase == exch_.phase()) {
    ++stats_.phase_msgs_handled;
    const bool was_satisfied = obs_ != nullptr && exch_.satisfied();
    exch_.credit(from, m.est);
    if (obs_ != nullptr && !was_satisfied && exch_.satisfied()) {
      obs_->on_quorum_satisfied(self_, exch_.round(), exch_.phase());
    }
    on_exchange_progress();
  }
}

void ProcessBase::maybe_catchup_reply(ProcId from, const Message& m) {
  // The sender is exchanging in a (round, phase) this process has already
  // begun — under crash-recovery or loss it may have missed this process's
  // broadcast of that phase. Retransmit it to the sender (crediting is
  // idempotent). The once-per-(peer, round, phase) guard bounds the extra
  // traffic to one unicast per peer per phase and keeps two processes from
  // bouncing replies forever.
  const auto key = std::make_pair(m.round, static_cast<int>(m.phase));
  const auto it = sent_history_.find(key);
  if (it == sent_history_.end()) return;
  if (!catchup_sent_.emplace(from, m.round, static_cast<int>(m.phase))
           .second) {
    return;
  }
  net_.send(self_, from, Message::phase_msg(m.round, m.phase, it->second));
}

void ProcessBase::on_peer_recover(ProcId peer) {
  // std::tuple orders lexicographically, peer first: erase its whole range.
  const auto lo = catchup_sent_.lower_bound({peer, 0, 0});
  const auto hi = catchup_sent_.lower_bound({peer + 1, 0, 0});
  catchup_sent_.erase(lo, hi);
}

void ProcessBase::on_recover() {
  if (!started_ || parked_) return;
  if (decided()) {
    // Re-gossip the decision: the original DECIDE broadcast may have been
    // dropped while peers were down.
    net_.broadcast(self_, Message::decide_msg(*decision_));
    return;
  }
  if (exch_.active()) {
    // Retransmit the active PHASE message. Peers still in this (r, ph)
    // re-credit idempotently; decided peers answer with DECIDE when decide
    // replies are enabled, pulling this process back in.
    exch_.retransmit();
  }
}

void ProcessBase::begin_exchange(Round r, Phase ph, Estimate est) {
  if (obs_ != nullptr) obs_->on_phase_begin(self_, r, ph);
  if (assist_) sent_history_[{r, static_cast<int>(ph)}] = est;
  exch_.begin(r, ph, est);
  const auto it = backlog_.find({r, static_cast<int>(ph)});
  if (it != backlog_.end()) {
    for (const auto& [from, v] : it->second) {
      ++stats_.phase_msgs_handled;
      exch_.credit(from, v);
    }
    // Backlogged credits may satisfy the quorum before any live message
    // arrives; report the milestone exactly once, here.
    if (obs_ != nullptr && exch_.satisfied()) {
      obs_->on_quorum_satisfied(self_, r, ph);
    }
  }
}

void ProcessBase::decide(Estimate v) {
  if (decided()) return;
  HYCO_CHECK_MSG(is_binary(v), "cannot decide ⊥");
  if (checker_ != nullptr) checker_->on_decide(self_, round_, v);
  if (obs_ != nullptr) obs_->on_decide(self_, round_);
  HYCO_DEBUG("p" << self_ << " decides " << v << " at round " << round_);
  net_.broadcast(self_, Message::decide_msg(v));
  decision_ = v;
  decision_round_ = round_;
}

bool ProcessBase::maybe_park() {
  if (round_ >= max_rounds_) {
    parked_ = true;
    HYCO_DEBUG("p" << self_ << " parked at round cap " << max_rounds_);
    return true;
  }
  return false;
}

}  // namespace hyco
