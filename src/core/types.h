// Foundational vocabulary types shared by every module: process/cluster/round
// identifiers and the three-valued estimate domain {0, 1, ⊥} of the paper.
//
// Process indices are 0-based internally (p_0 … p_{n-1}); the paper writes
// p_1 … p_n. Documentation and printed tables use the internal 0-based ids.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace hyco {

/// Index of a process (the paper's p_i). 0-based.
using ProcId = std::int32_t;

/// Index of a cluster (the paper's P[x]). 0-based.
using ClusterId = std::int32_t;

/// Round number r >= 1 (0 means "not started").
using Round = std::int32_t;

/// Phase within a round of Algorithm 2. Algorithm 3 has a single phase and
/// always uses Phase::One.
enum class Phase : std::uint8_t { One = 1, Two = 2 };

inline std::ostream& operator<<(std::ostream& os, Phase ph) {
  return os << (ph == Phase::One ? "ph1" : "ph2");
}

/// A value in the estimate domain {0, 1, ⊥}. ⊥ (Bot) is the paper's "no
/// championed value". The underlying values are chosen so that an Estimate
/// can directly index a 3-slot array (supporters[0], supporters[1],
/// supporters[⊥]).
enum class Estimate : std::uint8_t { Zero = 0, One = 1, Bot = 2 };

/// True iff e is a binary value (0 or 1), i.e. not ⊥.
constexpr bool is_binary(Estimate e) { return e != Estimate::Bot; }

/// Converts a bit (0/1) into the corresponding Estimate.
constexpr Estimate estimate_from_bit(int bit) {
  return bit == 0 ? Estimate::Zero : Estimate::One;
}

/// Converts a binary Estimate to its bit. Precondition: is_binary(e).
constexpr int estimate_to_bit(Estimate e) {
  return e == Estimate::Zero ? 0 : 1;
}

/// Array index of an estimate (0, 1, or 2 for ⊥).
constexpr std::size_t estimate_index(Estimate e) {
  return static_cast<std::size_t>(e);
}

/// The three estimate values, in index order; handy for iteration.
inline constexpr Estimate kAllEstimates[3] = {Estimate::Zero, Estimate::One,
                                              Estimate::Bot};

inline const char* to_cstring(Estimate e) {
  switch (e) {
    case Estimate::Zero: return "0";
    case Estimate::One: return "1";
    case Estimate::Bot: return "bot";
  }
  return "?";
}

inline std::ostream& operator<<(std::ostream& os, Estimate e) {
  return os << to_cstring(e);
}

/// Simulated time in abstract nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kSimTimeNever = -1;

}  // namespace hyco
