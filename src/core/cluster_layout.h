// Cluster-based partition of the process set (Section II-A).
//
// The n processes are partitioned into m non-empty clusters P[0..m-1]; every
// process knows m and the composition of each cluster, and cluster(i)
// returns the cluster of p_i. The two extreme configurations are the
// classical models: m == 1 is pure shared memory, m == n is pure message
// passing.
#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "util/bitset.h"

namespace hyco {

/// Immutable, validated partition of {0, ..., n-1} into m clusters.
class ClusterLayout {
 public:
  /// Builds a layout from explicit member lists. Throws ContractViolation if
  /// the lists are not a partition of a contiguous 0-based process range or
  /// any cluster is empty.
  explicit ClusterLayout(std::vector<std::vector<ProcId>> clusters);

  /// m == n: one process per cluster — the pure message-passing model.
  static ClusterLayout singletons(ProcId n);

  /// m == 1: all processes in one cluster — the pure shared-memory model.
  static ClusterLayout single(ProcId n);

  /// Contiguous clusters with the given sizes (must sum to n > 0).
  static ClusterLayout from_sizes(const std::vector<ProcId>& sizes);

  /// m near-equal contiguous clusters over n processes (n >= m >= 1).
  static ClusterLayout even(ProcId n, ClusterId m);

  /// The left decomposition of the paper's Figure 1: n = 7, m = 3 with
  /// sizes {2, 3, 2}. (The figure does not label its left split; the sizes
  /// here are the conventional reading and are documented in DESIGN.md.)
  static ClusterLayout fig1_left();

  /// The right decomposition of Figure 1: n = 7, m = 3 with P[1] = {p1},
  /// P[2] = {p2..p5} (a majority cluster, cited in the paper's conclusion),
  /// P[3] = {p6, p7}. 0-based: {0}, {1,2,3,4}, {5,6}.
  static ClusterLayout fig1_right();

  [[nodiscard]] ProcId n() const { return n_; }
  [[nodiscard]] ClusterId m() const {
    return static_cast<ClusterId>(clusters_.size());
  }

  /// The paper's cluster(i): the cluster id of process p.
  [[nodiscard]] ClusterId cluster_of(ProcId p) const;

  /// Members of cluster x, ascending.
  [[nodiscard]] const std::vector<ProcId>& members(ClusterId x) const;

  [[nodiscard]] ProcId cluster_size(ClusterId x) const;

  /// Members of cluster x as a bitset over processes.
  [[nodiscard]] const DynamicBitset& member_set(ClusterId x) const;

  /// True iff some cluster alone contains a majority (> n/2) of processes.
  [[nodiscard]] bool has_majority_cluster() const;

  /// Total size of all clusters that contain at least one live process —
  /// the "one for all" coverage: a cluster with any survivor counts whole.
  [[nodiscard]] ProcId live_coverage(const DynamicBitset& live) const;

  /// True iff the live set keeps >= 1 process in a set of clusters whose
  /// total size exceeds n/2 — the paper's termination condition.
  [[nodiscard]] bool covering_set_alive(const DynamicBitset& live) const;

  /// "{0,1},{2,3,4},{5,6}" — for logs and table labels.
  [[nodiscard]] std::string to_string() const;

 private:
  ProcId n_ = 0;
  std::vector<std::vector<ProcId>> clusters_;
  std::vector<ClusterId> cluster_of_;
  std::vector<DynamicBitset> member_sets_;
};

}  // namespace hyco
