// One-call simulation driver: builds the simulator, network, cluster
// memories, coins and processes for a configuration, runs to quiescence (or
// a limit), and returns decisions plus full instrumentation. Every test,
// example, and experiment harness goes through run_consensus(), which is a
// thin loop over the resumable ConsensusRun (construct → tick → finish) the
// multi-lane executor interleaves.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cluster_layout.h"
#include "core/consensus_process.h"
#include "core/types.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "shm/consensus_object.h"
#include "shm/op_counts.h"
#include "sim/crash.h"
#include "sim/simulator.h"

namespace hyco {

class Trace;

/// Which consensus algorithm a run executes.
enum class Algorithm {
  HybridLocalCoin,   ///< the paper's Algorithm 2
  HybridCommonCoin,  ///< the paper's Algorithm 3
  BenOr,             ///< pure message-passing baseline (uses layout.n() only)
};

const char* to_cstring(Algorithm a);

/// Plain-data description of one simulation run.
struct RunConfig {
  explicit RunConfig(ClusterLayout l) : layout(std::move(l)) {}

  ClusterLayout layout;
  Algorithm alg = Algorithm::HybridLocalCoin;

  /// Proposals, one per process (binary). Empty = all processes propose 0/1
  /// alternating by index (a split input).
  std::vector<Estimate> inputs;

  std::uint64_t seed = 1;
  DelayConfig delays = DelayConfig::uniform(50, 150);

  /// Optional override: build a custom delay model (e.g. adversarial); when
  /// set, `delays` is ignored.
  std::function<std::unique_ptr<DelayModel>()> delay_factory;

  CrashPlan crashes;  ///< empty specs = nobody crashes

  /// Adversarial scenario (partitions, link faults, crash-recovery, coin
  /// attack). Empty = none; runs are then byte-identical to pre-scenario
  /// builds. When non-empty, scenario-assist gossip is enabled on every
  /// process (decided processes answer stale traffic with DECIDE, and
  /// undecided ones answer it by retransmitting their own message of that
  /// phase) so recovered or loss-starved processes can still terminate.
  ScenarioConfig scenario;

  Round max_rounds = 5000;          ///< parking brake for unlucky coin runs
  std::uint64_t max_events = 200'000'000;
  ConsensusImpl shm_impl = ConsensusImpl::Cas;

  /// Processes invoke propose() at an independent random time in
  /// [0, start_jitter] — asynchronous processes run at their own speed.
  /// Without jitter the lowest-index member of every cluster always wins
  /// the round-1 cluster consensus (a determinism artifact).
  SimTime start_jitter = 50;

  /// Common-coin imperfection (Algorithm 3 only): probability that a round's
  /// coin is adversary-chosen. 0 = perfect coin.
  double coin_epsilon = 0.0;
  /// The bit the adversary substitutes when the coin is corrupted.
  int adversary_bit = 0;

  bool enable_trace = false;

  /// When set (with enable_trace), events are recorded into this caller-
  /// owned ring instead of a run-local one — the caller keeps the structured
  /// records for export (src/obs/trace_export.h) rather than just the
  /// rendered trace_dump text.
  Trace* trace_sink = nullptr;

  /// Collect per-phase latency timings via an observer on each process.
  /// Observation is out of band: it never touches seeded RNG streams or
  /// algorithm state, so results are byte-identical either way. The
  /// message-class counters in RunResult::obs are filled regardless (they
  /// are free — copied from NetStats / ProcessStats after the run).
  bool collect_obs = false;
};

/// Everything observable about a finished run.
struct RunResult {
  std::vector<std::optional<Estimate>> decisions;  ///< per process
  std::vector<Round> decision_rounds;              ///< 0 if undecided
  std::vector<ProcessStats> proc_stats;

  std::optional<Estimate> decided_value;  ///< first decision, if any
  bool all_correct_decided = false;  ///< every never-crashed process decided
  bool agreement_ok = true;
  bool validity_ok = true;
  bool invariants_ok = true;  ///< WA1/WA2/cluster-consistency (hybrid runs)
  std::vector<std::string> violations;

  Round max_round = 0;                        ///< deepest round entered
  Round max_decision_round = 0;               ///< deepest deciding round
  SimTime last_decision_time = kSimTimeNever;
  SimTime end_time = 0;
  NetStats net;
  ShmOpCounts shm;                  ///< summed over all memories
  std::uint64_t consensus_objects = 0;  ///< objects materialized
  std::uint64_t events = 0;
  StopReason stop = StopReason::Quiescent;
  std::size_t crashed = 0;    ///< processes down at the end of the run
  std::size_t recovered = 0;  ///< crash-recovery rejoins executed
  std::string trace_dump;  ///< populated when cfg.enable_trace

  /// Observability sample: message-class counters always; phase timings
  /// only when cfg.collect_obs (zero otherwise).
  obs::ObsSample obs;

  /// all_correct_decided && agreement && validity && invariants.
  [[nodiscard]] bool success() const {
    return all_correct_decided && agreement_ok && validity_ok &&
           invariants_ok;
  }
  /// agreement && validity && invariants (termination not required —
  /// indulgence means safety must hold even when runs cannot finish).
  [[nodiscard]] bool safe() const {
    return agreement_ok && validity_ok && invariants_ok;
  }
};

namespace obs {
class ObserverFanout;
class PhaseTimings;
class TraceObserver;
}  // namespace obs

class ClusterMemory;
class ICommonCoin;
class InvariantChecker;
class ScenarioEngine;

/// run_consensus() decomposed into resumable pieces: the constructor does
/// every piece of setup (simulator, network, memories, coins, processes,
/// scheduled crashes/rejoins/starts), tick() advances the simulation by at
/// most one virtual-time tick, and finish() harvests the RunResult once
/// tick() reports the run stopped.
///
/// The point of the split is the multi-lane executor: K independent runs
/// per worker interleave tick-by-tick to hide the memory latency one deep
/// event queue exposes. Each run's simulator is fully self-contained, so
/// interleaving cannot change any run's behavior — run_consensus() and a
/// lane cohort produce bit-identical results.
///
/// Not copyable or movable: scheduled closures capture `this`.
class ConsensusRun {
 public:
  explicit ConsensusRun(RunConfig cfg);
  ~ConsensusRun();
  ConsensusRun(const ConsensusRun&) = delete;
  ConsensusRun& operator=(const ConsensusRun&) = delete;

  /// Runs at most one virtual-time tick. Returns true when the run has
  /// stopped (quiescent or a limit) — do not call again after that.
  bool tick();

  /// Harvests and returns the result. Call exactly once, after tick()
  /// returned true.
  RunResult finish();

 private:
  RunConfig cfg_;
  std::vector<Estimate> inputs_;
  Simulator sim_;
  CrashPlan plan_;
  CrashTracker tracker_;
  std::unique_ptr<DelayModel> delays_;
  std::unique_ptr<ScenarioEngine> scenario_;
  std::unique_ptr<Trace> local_trace_;
  Trace* trace_ = nullptr;
  std::unique_ptr<SimNetwork> net_;
  std::unique_ptr<InvariantChecker> checker_;
  std::vector<std::unique_ptr<ClusterMemory>> memories_;
  std::unique_ptr<ICommonCoin> common_coin_;
  std::vector<std::unique_ptr<IConsensusProcess>> procs_;
  std::unique_ptr<obs::PhaseTimings> timings_;
  std::unique_ptr<obs::TraceObserver> trace_obs_;
  std::unique_ptr<obs::ObserverFanout> obs_fanout_;
  std::vector<char> started_;
  RunResult result_;
  bool stopped_ = false;
  bool finished_ = false;
};

/// Builds and runs one simulation (ConsensusRun ticked to completion).
RunResult run_consensus(const RunConfig& cfg);

/// Helper: split input vector (process i proposes i % 2).
std::vector<Estimate> split_inputs(ProcId n);

/// Helper: every process proposes `v`.
std::vector<Estimate> uniform_inputs(ProcId n, Estimate v);

}  // namespace hyco
