// Simulation driver for the multivalued consensus extension, mirroring
// core/runner.h.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/cluster_layout.h"
#include "core/multivalued.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "shm/consensus_object.h"
#include "sim/crash.h"
#include "sim/simulator.h"

namespace hyco {

/// Description of one multivalued consensus run.
struct MultiRunConfig {
  explicit MultiRunConfig(ClusterLayout l) : layout(std::move(l)) {}

  ClusterLayout layout;
  int width = 16;                     ///< bits of the value domain
  std::vector<std::uint64_t> inputs;  ///< empty = pseudorandom per process
  std::uint64_t seed = 1;
  DelayConfig delays = DelayConfig::uniform(50, 150);
  CrashPlan crashes;
  Round max_rounds_per_bit = 2000;
  std::uint64_t max_events = 400'000'000;
  ConsensusImpl shm_impl = ConsensusImpl::Cas;
};

/// Outcome of a multivalued run.
struct MultiRunResult {
  std::vector<std::optional<std::uint64_t>> decisions;
  std::optional<std::uint64_t> decided_value;
  bool all_correct_decided = false;
  bool agreement_ok = true;
  bool validity_ok = true;
  NetStats net;
  ShmOpCounts shm;
  std::uint64_t consensus_objects = 0;
  std::uint64_t events = 0;
  SimTime end_time = 0;
  StopReason stop = StopReason::Quiescent;
  std::size_t crashed = 0;

  [[nodiscard]] bool success() const {
    return all_correct_decided && agreement_ok && validity_ok;
  }
};

/// Builds and runs one multivalued consensus simulation.
MultiRunResult run_multivalued(const MultiRunConfig& cfg);

}  // namespace hyco
