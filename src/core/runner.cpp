#include "core/runner.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "baseline/ben_or.h"
#include "coin/coin.h"
#include "core/common_coin_process.h"
#include "core/invariant_checker.h"
#include "core/local_coin_process.h"
#include "obs/phase_timings.h"
#include "scenario/engine.h"
#include "shm/cluster_memory.h"
#include "sim/trace.h"
#include "util/assert.h"

namespace hyco {

const char* to_cstring(Algorithm a) {
  switch (a) {
    case Algorithm::HybridLocalCoin: return "hybrid-LC";
    case Algorithm::HybridCommonCoin: return "hybrid-CC";
    case Algorithm::BenOr: return "ben-or";
  }
  return "?";
}

std::vector<Estimate> split_inputs(ProcId n) {
  std::vector<Estimate> in(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    in[static_cast<std::size_t>(p)] = estimate_from_bit(p % 2);
  }
  return in;
}

std::vector<Estimate> uniform_inputs(ProcId n, Estimate v) {
  HYCO_CHECK(is_binary(v));
  return std::vector<Estimate>(static_cast<std::size_t>(n), v);
}

RunResult run_consensus(const RunConfig& cfg) {
  const ProcId n = cfg.layout.n();
  const std::vector<Estimate> inputs =
      cfg.inputs.empty() ? split_inputs(n) : cfg.inputs;
  HYCO_CHECK_MSG(inputs.size() == static_cast<std::size_t>(n),
                 "inputs size " << inputs.size() << " != n " << n);

  Simulator sim(cfg.seed);
  sim.reserve_all_to_all(n);
  CrashPlan plan = cfg.crashes;
  if (plan.specs.empty()) plan = CrashPlan::none(static_cast<std::size_t>(n));
  HYCO_CHECK_MSG(plan.specs.size() == static_cast<std::size_t>(n),
                 "crash plan size mismatch");
  CrashTracker tracker(static_cast<std::size_t>(n));

  std::unique_ptr<DelayModel> delays =
      cfg.delay_factory ? cfg.delay_factory() : make_delay_model(cfg.delays);

  // Scenario faults wrap the delay model in a FaultyChannel and give the
  // network its partition/loss/duplication hooks. Empty scenario = the
  // legacy path, bit for bit.
  std::unique_ptr<ScenarioEngine> scenario;
  DelayModel* channel = delays.get();
  if (!cfg.scenario.empty()) {
    scenario = std::make_unique<ScenarioEngine>(cfg.scenario, cfg.layout,
                                                std::move(delays));
    channel = &scenario->channel();
  }

  // Record into the caller's ring when one is supplied (structured export
  // keeps the records); otherwise a run-local ring backs trace_dump. With
  // tracing off the network gets no trace at all, so call sites skip even
  // the detail-string formatting.
  Trace local_trace;
  Trace* trace = cfg.trace_sink != nullptr ? cfg.trace_sink : &local_trace;
  trace->enable(cfg.enable_trace);
  SimNetwork net(sim, *channel, tracker, n, &plan,
                 cfg.enable_trace ? trace : nullptr);
  if (scenario != nullptr) net.set_scenario(scenario.get());

  InvariantChecker checker(cfg.layout);
  checker.set_inputs(inputs);

  // Cluster memories (hybrid algorithms only touch their own cluster's).
  std::vector<std::unique_ptr<ClusterMemory>> memories;
  if (cfg.alg != Algorithm::BenOr) {
    memories.reserve(static_cast<std::size_t>(cfg.layout.m()));
    for (ClusterId x = 0; x < cfg.layout.m(); ++x) {
      memories.push_back(
          std::make_unique<ClusterMemory>(x, n, cfg.shm_impl));
    }
  }

  // The common coin (Algorithm 3). BiasedCommonCoin models an imperfect
  // coin for the T-ADV ablation.
  std::unique_ptr<ICommonCoin> common_coin;
  if (cfg.alg == Algorithm::HybridCommonCoin) {
    const std::uint64_t coin_seed = mix64(cfg.seed, 0xC01C01);
    if (cfg.coin_epsilon > 0.0) {
      common_coin = std::make_unique<BiasedCommonCoin>(
          coin_seed, cfg.coin_epsilon,
          [bit = cfg.adversary_bit](Round) { return bit; });
    } else {
      common_coin = std::make_unique<CommonCoin>(coin_seed);
    }
  }

  std::vector<std::unique_ptr<IConsensusProcess>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    const std::uint64_t coin_seed = mix64(cfg.seed, 0x10CA1 + static_cast<std::uint64_t>(p));
    switch (cfg.alg) {
      case Algorithm::HybridLocalCoin: {
        auto& mem = *memories[static_cast<std::size_t>(
            cfg.layout.cluster_of(p))];
        procs.push_back(std::make_unique<LocalCoinProcess>(
            p, cfg.layout, net, mem, coin_seed, &checker, cfg.max_rounds));
        break;
      }
      case Algorithm::HybridCommonCoin: {
        auto& mem = *memories[static_cast<std::size_t>(
            cfg.layout.cluster_of(p))];
        procs.push_back(std::make_unique<CommonCoinProcess>(
            p, cfg.layout, net, mem, *common_coin, &checker,
            cfg.max_rounds));
        break;
      }
      case Algorithm::BenOr:
        procs.push_back(std::make_unique<BenOrProcess>(
            p, n, net, coin_seed, cfg.max_rounds));
        break;
    }
  }

  // Per-phase latency observer (opt-in). Reads sim.now() but never mutates
  // simulation state, so instrumented runs are byte-identical.
  std::unique_ptr<obs::PhaseTimings> timings;
  if (cfg.collect_obs) {
    timings =
        std::make_unique<obs::PhaseTimings>(n, [&sim] { return sim.now(); });
    for (auto& proc : procs) proc->set_observer(timings.get());
  }

  RunResult result;
  result.decisions.assign(static_cast<std::size_t>(n), std::nullopt);
  result.decision_rounds.assign(static_cast<std::size_t>(n), 0);

  // Deliveries run through here; newly-made decisions are timestamped.
  net.set_deliver([&](ProcId to, ProcId from, const Message& m) {
    auto& proc = *procs[static_cast<std::size_t>(to)];
    const bool was_decided = proc.decided();
    proc.on_message(from, m);
    if (!was_decided && proc.decided()) {
      result.last_decision_time = sim.now();
    }
  });

  // Scripted AtTime crashes.
  for (ProcId p = 0; p < n; ++p) {
    const CrashSpec& spec = plan.specs[static_cast<std::size_t>(p)];
    if (spec.kind == CrashSpec::Kind::AtTime) {
      if (spec.time <= 0) {
        tracker.crash(p, 0);  // initially dead
      } else {
        sim.schedule_at(spec.time, [&tracker, p, t = spec.time] {
          tracker.crash(p, t);
        });
      }
    }
  }

  // Crash-recovery cycles (scenario). A process that was down at its start
  // time proposes on rejoin instead; `started` guards the double-start.
  std::vector<char> started(static_cast<std::size_t>(n), 0);
  if (scenario != nullptr) {
    for (const ScenarioEngine::Rejoin& rj : scenario->rejoins()) {
      const ProcId p = rj.proc;
      if (rj.down_at <= 0) {
        tracker.crash(p, 0);  // down from the start
      } else {
        sim.schedule_at(rj.down_at, [&tracker, p, t = rj.down_at] {
          tracker.crash(p, t);
        });
      }
      if (rj.up_at == kSimTimeNever) continue;
      sim.schedule_at(rj.up_at, [&, p, t = rj.up_at] {
        const auto idx = static_cast<std::size_t>(p);
        tracker.recover(p, t);
        // Announce the rejoin first: replies peers sent into the down
        // window were lost, so their per-peer reply guards must reset
        // before the rejoiner's retransmit reaches them.
        for (auto& proc : procs) proc->on_peer_recover(p);
        if (started[idx] == 0) {
          started[idx] = 1;
          procs[idx]->start(inputs[idx]);
        } else {
          procs[idx]->on_recover();
        }
      });
    }
  }

  // Decide-reply and catch-up gossip keep scenario runs live (see
  // RunConfig::scenario).
  if (scenario != nullptr) {
    for (auto& proc : procs) proc->set_scenario_assist(true);
  }

  // Every live process invokes propose(v_p) at its own start time. Clock
  // skew (scenario) stretches a slow process's start the same way it
  // stretches its per-message handling.
  Rng start_rng(mix64(cfg.seed, 0x57A7));
  for (ProcId p = 0; p < n; ++p) {
    SimTime at =
        cfg.start_jitter > 0 ? start_rng.uniform(0, cfg.start_jitter) : 0;
    if (scenario != nullptr) {
      const double f = scenario->speed_factor(p);
      if (f != 1.0) {
        at = static_cast<SimTime>(std::llround(static_cast<double>(at) * f));
      }
    }
    sim.schedule_at(at, [&, p] {
      const auto idx = static_cast<std::size_t>(p);
      if (tracker.is_crashed(p) || started[idx] != 0) return;
      started[idx] = 1;
      procs[idx]->start(inputs[idx]);
    });
  }

  result.stop = sim.run(cfg.max_events);
  result.end_time = sim.now();
  result.events = sim.events_executed();
  result.crashed = tracker.crashed_count();
  result.recovered = tracker.recovered_count();

  // Harvest per-process outcomes.
  bool all_correct_decided = true;
  for (ProcId p = 0; p < n; ++p) {
    const auto& proc = *procs[static_cast<std::size_t>(p)];
    const auto idx = static_cast<std::size_t>(p);
    result.proc_stats.push_back(proc.stats());
    result.max_round = std::max(result.max_round, proc.current_round());
    if (proc.decided()) {
      result.decisions[idx] = proc.decision();
      result.decision_rounds[idx] = proc.decision_round();
      result.max_decision_round =
          std::max(result.max_decision_round, proc.decision_round());
      if (!result.decided_value.has_value()) {
        result.decided_value = proc.decision();
      } else if (*result.decided_value != *proc.decision()) {
        result.agreement_ok = false;
        std::ostringstream os;
        os << "AGREEMENT violated: p" << p << " decided " << *proc.decision()
           << " vs earlier " << *result.decided_value;
        result.violations.push_back(os.str());
      }
    } else if (!tracker.is_crashed(p)) {
      all_correct_decided = false;
    }
  }
  result.all_correct_decided = all_correct_decided;

  if (result.decided_value.has_value()) {
    const bool proposed = std::find(inputs.begin(), inputs.end(),
                                    *result.decided_value) != inputs.end();
    if (!proposed) {
      result.validity_ok = false;
      result.violations.push_back("VALIDITY violated: decided value "
                                  "was never proposed");
    }
  }

  if (!checker.ok()) {
    result.invariants_ok = false;
    for (const auto& v : checker.violations()) result.violations.push_back(v);
  }

  for (const auto& mem : memories) {
    result.shm += mem->counts();
    result.consensus_objects += mem->objects_created();
  }
  result.net = net.stats();

  // Message-class counters are free (already tallied by the network and the
  // processes); phase timings only exist under collect_obs.
  result.obs[obs::ObsId::kDelivered] = result.net.delivered;
  result.obs[obs::ObsId::kDroppedPartitioned] = result.net.dropped_partitioned;
  result.obs[obs::ObsId::kDroppedLost] = result.net.dropped_lost;
  result.obs[obs::ObsId::kDuplicated] = result.net.duplicated;
  result.obs[obs::ObsId::kHeldPartitioned] = result.net.held_partitioned;
  std::uint64_t coin_flips = 0;
  for (const ProcessStats& ps : result.proc_stats) coin_flips += ps.coin_flips;
  result.obs[obs::ObsId::kCoinFlips] = coin_flips;
  if (timings != nullptr) timings->fill(result.obs);

  if (cfg.enable_trace) {
    std::ostringstream os;
    trace->dump(os);
    result.trace_dump = os.str();
  }
  return result;
}

}  // namespace hyco
