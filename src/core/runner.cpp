#include "core/runner.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "baseline/ben_or.h"
#include "coin/coin.h"
#include "core/common_coin_process.h"
#include "core/invariant_checker.h"
#include "core/local_coin_process.h"
#include "obs/observer.h"
#include "obs/phase_timings.h"
#include "obs/trace_observer.h"
#include "scenario/engine.h"
#include "shm/cluster_memory.h"
#include "sim/trace.h"
#include "util/assert.h"

namespace hyco {

const char* to_cstring(Algorithm a) {
  switch (a) {
    case Algorithm::HybridLocalCoin: return "hybrid-LC";
    case Algorithm::HybridCommonCoin: return "hybrid-CC";
    case Algorithm::BenOr: return "ben-or";
  }
  return "?";
}

std::vector<Estimate> split_inputs(ProcId n) {
  std::vector<Estimate> in(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    in[static_cast<std::size_t>(p)] = estimate_from_bit(p % 2);
  }
  return in;
}

std::vector<Estimate> uniform_inputs(ProcId n, Estimate v) {
  HYCO_CHECK(is_binary(v));
  return std::vector<Estimate>(static_cast<std::size_t>(n), v);
}

ConsensusRun::ConsensusRun(RunConfig cfg)
    : cfg_(std::move(cfg)),
      inputs_(cfg_.inputs.empty() ? split_inputs(cfg_.layout.n())
                                  : cfg_.inputs),
      sim_(cfg_.seed),
      plan_(cfg_.crashes),
      tracker_(static_cast<std::size_t>(cfg_.layout.n())) {
  const ProcId n = cfg_.layout.n();
  HYCO_CHECK_MSG(inputs_.size() == static_cast<std::size_t>(n),
                 "inputs size " << inputs_.size() << " != n " << n);

  sim_.reserve_all_to_all(n);
  if (plan_.specs.empty()) plan_ = CrashPlan::none(static_cast<std::size_t>(n));
  HYCO_CHECK_MSG(plan_.specs.size() == static_cast<std::size_t>(n),
                 "crash plan size mismatch");

  delays_ =
      cfg_.delay_factory ? cfg_.delay_factory() : make_delay_model(cfg_.delays);

  // Scenario faults wrap the delay model in a FaultyChannel and give the
  // network its partition/loss/duplication hooks. Empty scenario = the
  // legacy path, bit for bit.
  DelayModel* channel = delays_.get();
  if (!cfg_.scenario.empty()) {
    scenario_ = std::make_unique<ScenarioEngine>(cfg_.scenario, cfg_.layout,
                                                 std::move(delays_));
    channel = &scenario_->channel();
  }

  // Record into the caller's ring when one is supplied (structured export
  // keeps the records); otherwise a run-local ring backs trace_dump. With
  // tracing off the network gets no trace at all, so call sites skip even
  // the detail-string formatting.
  local_trace_ = std::make_unique<Trace>();
  trace_ = cfg_.trace_sink != nullptr ? cfg_.trace_sink : local_trace_.get();
  trace_->enable(cfg_.enable_trace);
  net_ = std::make_unique<SimNetwork>(sim_, *channel, tracker_, n, &plan_,
                                      cfg_.enable_trace ? trace_ : nullptr);
  if (scenario_ != nullptr) net_->set_scenario(scenario_.get());

  checker_ = std::make_unique<InvariantChecker>(cfg_.layout);
  checker_->set_inputs(inputs_);

  // Cluster memories (hybrid algorithms only touch their own cluster's).
  if (cfg_.alg != Algorithm::BenOr) {
    memories_.reserve(static_cast<std::size_t>(cfg_.layout.m()));
    for (ClusterId x = 0; x < cfg_.layout.m(); ++x) {
      memories_.push_back(
          std::make_unique<ClusterMemory>(x, n, cfg_.shm_impl));
    }
  }

  // The common coin (Algorithm 3). BiasedCommonCoin models an imperfect
  // coin for the T-ADV ablation.
  if (cfg_.alg == Algorithm::HybridCommonCoin) {
    const std::uint64_t coin_seed = mix64(cfg_.seed, 0xC01C01);
    if (cfg_.coin_epsilon > 0.0) {
      common_coin_ = std::make_unique<BiasedCommonCoin>(
          coin_seed, cfg_.coin_epsilon,
          [bit = cfg_.adversary_bit](Round) { return bit; });
    } else {
      common_coin_ = std::make_unique<CommonCoin>(coin_seed);
    }
  }

  procs_.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    const std::uint64_t coin_seed =
        mix64(cfg_.seed, 0x10CA1 + static_cast<std::uint64_t>(p));
    switch (cfg_.alg) {
      case Algorithm::HybridLocalCoin: {
        auto& mem = *memories_[static_cast<std::size_t>(
            cfg_.layout.cluster_of(p))];
        procs_.push_back(std::make_unique<LocalCoinProcess>(
            p, cfg_.layout, *net_, mem, coin_seed, checker_.get(),
            cfg_.max_rounds));
        break;
      }
      case Algorithm::HybridCommonCoin: {
        auto& mem = *memories_[static_cast<std::size_t>(
            cfg_.layout.cluster_of(p))];
        procs_.push_back(std::make_unique<CommonCoinProcess>(
            p, cfg_.layout, *net_, mem, *common_coin_, checker_.get(),
            cfg_.max_rounds));
        break;
      }
      case Algorithm::BenOr:
        procs_.push_back(std::make_unique<BenOrProcess>(
            p, n, *net_, coin_seed, cfg_.max_rounds));
        break;
    }
  }

  // Per-phase latency observer (opt-in) and/or trace mirror. Both read
  // sim.now() but never mutate simulation state, so instrumented runs are
  // byte-identical. When both are requested they share the processes'
  // single observer slot through a fanout.
  if (cfg_.collect_obs) {
    timings_ = std::make_unique<obs::PhaseTimings>(
        n, [this] { return sim_.now(); });
  }
  if (cfg_.enable_trace) {
    trace_obs_ = std::make_unique<obs::TraceObserver>(
        *trace_, [this] { return sim_.now(); });
  }
  obs::IRunObserver* observer = nullptr;
  if (timings_ != nullptr && trace_obs_ != nullptr) {
    obs_fanout_ = std::make_unique<obs::ObserverFanout>(timings_.get(),
                                                        trace_obs_.get());
    observer = obs_fanout_.get();
  } else if (timings_ != nullptr) {
    observer = timings_.get();
  } else if (trace_obs_ != nullptr) {
    observer = trace_obs_.get();
  }
  if (observer != nullptr) {
    for (auto& proc : procs_) proc->set_observer(observer);
  }

  result_.decisions.assign(static_cast<std::size_t>(n), std::nullopt);
  result_.decision_rounds.assign(static_cast<std::size_t>(n), 0);

  // Deliveries run through here; newly-made decisions are timestamped.
  net_->set_deliver([this](ProcId to, ProcId from, const Message& m) {
    auto& proc = *procs_[static_cast<std::size_t>(to)];
    const bool was_decided = proc.decided();
    proc.on_message(from, m);
    if (!was_decided && proc.decided()) {
      result_.last_decision_time = sim_.now();
    }
  });

  // Scripted AtTime crashes.
  for (ProcId p = 0; p < n; ++p) {
    const CrashSpec& spec = plan_.specs[static_cast<std::size_t>(p)];
    if (spec.kind == CrashSpec::Kind::AtTime) {
      if (spec.time <= 0) {
        tracker_.crash(p, 0);  // initially dead
      } else {
        sim_.schedule_at(spec.time, [this, p, t = spec.time] {
          tracker_.crash(p, t);
        });
      }
    }
  }

  // Crash-recovery cycles (scenario). A process that was down at its start
  // time proposes on rejoin instead; `started_` guards the double-start.
  started_.assign(static_cast<std::size_t>(n), 0);
  if (scenario_ != nullptr) {
    for (const ScenarioEngine::Rejoin& rj : scenario_->rejoins()) {
      const ProcId p = rj.proc;
      if (rj.down_at <= 0) {
        tracker_.crash(p, 0);  // down from the start
      } else {
        sim_.schedule_at(rj.down_at, [this, p, t = rj.down_at] {
          tracker_.crash(p, t);
        });
      }
      if (rj.up_at == kSimTimeNever) continue;
      sim_.schedule_at(rj.up_at, [this, p, t = rj.up_at] {
        const auto idx = static_cast<std::size_t>(p);
        tracker_.recover(p, t);
        // Announce the rejoin first: replies peers sent into the down
        // window were lost, so their per-peer reply guards must reset
        // before the rejoiner's retransmit reaches them.
        for (auto& proc : procs_) proc->on_peer_recover(p);
        if (started_[idx] == 0) {
          started_[idx] = 1;
          procs_[idx]->start(inputs_[idx]);
        } else {
          procs_[idx]->on_recover();
        }
      });
    }
  }

  // Decide-reply and catch-up gossip keep scenario runs live (see
  // RunConfig::scenario).
  if (scenario_ != nullptr) {
    for (auto& proc : procs_) proc->set_scenario_assist(true);
  }

  // Every live process invokes propose(v_p) at its own start time. Clock
  // skew (scenario) stretches a slow process's start the same way it
  // stretches its per-message handling.
  Rng start_rng(mix64(cfg_.seed, 0x57A7));
  for (ProcId p = 0; p < n; ++p) {
    SimTime at =
        cfg_.start_jitter > 0 ? start_rng.uniform(0, cfg_.start_jitter) : 0;
    if (scenario_ != nullptr) {
      const double f = scenario_->speed_factor(p);
      if (f != 1.0) {
        at = static_cast<SimTime>(std::llround(static_cast<double>(at) * f));
      }
    }
    sim_.schedule_at(at, [this, p] {
      const auto idx = static_cast<std::size_t>(p);
      if (tracker_.is_crashed(p) || started_[idx] != 0) return;
      started_[idx] = 1;
      procs_[idx]->start(inputs_[idx]);
    });
  }
}

ConsensusRun::~ConsensusRun() = default;

bool ConsensusRun::tick() {
  HYCO_CHECK_MSG(!stopped_, "tick() after the run stopped");
  const std::optional<StopReason> stop = sim_.run_tick(cfg_.max_events);
  if (!stop) return false;
  result_.stop = *stop;
  stopped_ = true;
  return true;
}

RunResult ConsensusRun::finish() {
  HYCO_CHECK_MSG(stopped_, "finish() before the run stopped");
  HYCO_CHECK_MSG(!finished_, "finish() called twice");
  finished_ = true;

  const ProcId n = cfg_.layout.n();
  result_.end_time = sim_.now();
  result_.events = sim_.events_executed();
  result_.crashed = tracker_.crashed_count();
  result_.recovered = tracker_.recovered_count();

  // Harvest per-process outcomes.
  bool all_correct_decided = true;
  for (ProcId p = 0; p < n; ++p) {
    const auto& proc = *procs_[static_cast<std::size_t>(p)];
    const auto idx = static_cast<std::size_t>(p);
    result_.proc_stats.push_back(proc.stats());
    result_.max_round = std::max(result_.max_round, proc.current_round());
    if (proc.decided()) {
      result_.decisions[idx] = proc.decision();
      result_.decision_rounds[idx] = proc.decision_round();
      result_.max_decision_round =
          std::max(result_.max_decision_round, proc.decision_round());
      if (!result_.decided_value.has_value()) {
        result_.decided_value = proc.decision();
      } else if (*result_.decided_value != *proc.decision()) {
        result_.agreement_ok = false;
        std::ostringstream os;
        os << "AGREEMENT violated: p" << p << " decided " << *proc.decision()
           << " vs earlier " << *result_.decided_value;
        result_.violations.push_back(os.str());
      }
    } else if (!tracker_.is_crashed(p)) {
      all_correct_decided = false;
    }
  }
  result_.all_correct_decided = all_correct_decided;

  if (result_.decided_value.has_value()) {
    const bool proposed = std::find(inputs_.begin(), inputs_.end(),
                                    *result_.decided_value) != inputs_.end();
    if (!proposed) {
      result_.validity_ok = false;
      result_.violations.push_back("VALIDITY violated: decided value "
                                   "was never proposed");
    }
  }

  if (!checker_->ok()) {
    result_.invariants_ok = false;
    for (const auto& v : checker_->violations()) {
      result_.violations.push_back(v);
    }
  }

  for (const auto& mem : memories_) {
    result_.shm += mem->counts();
    result_.consensus_objects += mem->objects_created();
  }
  result_.net = net_->stats();

  // Message-class counters are free (already tallied by the network and the
  // processes); phase timings only exist under collect_obs.
  result_.obs[obs::ObsId::kDelivered] = result_.net.delivered;
  result_.obs[obs::ObsId::kDroppedPartitioned] =
      result_.net.dropped_partitioned;
  result_.obs[obs::ObsId::kDroppedLost] = result_.net.dropped_lost;
  result_.obs[obs::ObsId::kDuplicated] = result_.net.duplicated;
  result_.obs[obs::ObsId::kHeldPartitioned] = result_.net.held_partitioned;
  std::uint64_t coin_flips = 0;
  for (const ProcessStats& ps : result_.proc_stats) {
    coin_flips += ps.coin_flips;
  }
  result_.obs[obs::ObsId::kCoinFlips] = coin_flips;
  result_.obs[obs::ObsId::kRounds] =
      static_cast<std::uint64_t>(result_.max_decision_round);
  if (timings_ != nullptr) timings_->fill(result_.obs);

  if (cfg_.enable_trace) {
    std::ostringstream os;
    trace_->dump(os);
    result_.trace_dump = os.str();
  }
  return std::move(result_);
}

RunResult run_consensus(const RunConfig& cfg) {
  ConsensusRun run(cfg);
  while (!run.tick()) {
  }
  return run.finish();
}

}  // namespace hyco
