// Algorithm 2 — local-coin binary consensus for the hybrid communication
// model (the paper's extension of Ben-Or's 1983 randomized consensus).
//
// Per round r (two phases):
//   Phase 1: est1 ← CONS_x[r,1].propose(est1)        (cluster-local agree)
//            msg_exchange(r, 1, est1)                (all-to-all, Alg. 1)
//            est2 ← v if |supporters[v]| > n/2 else ⊥
//   Phase 2: est2 ← CONS_x[r,2].propose(est2)
//            msg_exchange(r, 2, est2)
//            rec = values received:
//              {v}    → broadcast DECIDE(v); return v
//              {v,⊥}  → est1 ← v
//              {⊥}    → est1 ← local_coin()
//
// With singleton clusters the CONS objects are trivial and this is exactly
// Ben-Or's algorithm (Section III-B of the paper; cross-validated against
// the independent baseline in src/baseline/ben_or.h by the test suite).
#pragma once

#include "coin/coin.h"
#include "core/process_base.h"
#include "shm/cluster_memory.h"

namespace hyco {

/// One process of Algorithm 2. Event-driven: the runner feeds messages via
/// on_message(); cluster-local consensus is a synchronous wait-free call
/// into this process's ClusterMemory.
class LocalCoinProcess final : public ProcessBase {
 public:
  /// `memory` must be the MEM_x of this process's cluster; `coin_seed` must
  /// be unique per process (independence of local coins).
  LocalCoinProcess(ProcId self, const ClusterLayout& layout, INetwork& net,
                   ClusterMemory& memory, std::uint64_t coin_seed,
                   InvariantChecker* checker, Round max_rounds);

  /// Current estimate (est1) — exposed for tests and debugging.
  [[nodiscard]] Estimate est1() const { return est1_; }

 protected:
  void enter_round() override;
  void on_exchange_progress() override;

 private:
  void complete_phase1();
  void complete_phase2();

  ClusterMemory& memory_;
  LocalCoin coin_;
  Estimate est1_ = Estimate::Bot;
  Estimate est2_ = Estimate::Bot;
};

}  // namespace hyco
