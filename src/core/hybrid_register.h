// A multi-writer multi-reader atomic register emulated over the hybrid
// communication model — the "one for all" idea applied to registers (the
// problem studied for this model in Imbs & Raynal 2013, the paper's
// reference [16], and suggested by the paper's conclusion as a direction:
// other distributed computing problems on the same substrate).
//
// Construction (ABD-style, with cluster-closure quorums):
//  * each CLUSTER keeps one shared (timestamp, value) record — any member
//    that serves a query reads/updates the record in its cluster's shared
//    memory, so a single live member answers for the whole cluster;
//  * a quorum is any set of clusters covering > n/2 processes with one
//    live responder each. Two covering sets always share a cluster
//    (clusters partition the processes), and the shared record makes the
//    intersection effective even if the exact member that served the first
//    operation has crashed since — one for all, all for one;
//  * write(v): query round (collect cluster-latest timestamps, coverage
//    > n/2), pick ts = (max_seq + 1, writer), then store round (coverage
//    > n/2); read(): query round picks the max (ts, v), then writes it
//    back before returning (the classic "readers must write" rule).
//
// Liveness condition is the same as consensus: a covering set of clusters
// with >= 1 live process each. Unlike consensus, no randomization is
// needed — registers are emulatable deterministically.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/cluster_layout.h"
#include "core/types.h"
#include "net/network.h"
#include "util/bitset.h"

namespace hyco {

/// Logical write timestamp: totally ordered, unique per (seq, writer).
struct RegTimestamp {
  std::int64_t seq = 0;
  ProcId writer = -1;

  friend bool operator<(const RegTimestamp& a, const RegTimestamp& b) {
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.writer < b.writer;
  }
  bool operator==(const RegTimestamp&) const = default;
};

/// The (ts, value) record one cluster keeps in its shared memory.
struct RegRecord {
  RegTimestamp ts;
  std::uint64_t value = 0;
};

/// Shared per-cluster register state. In the discrete-event simulator every
/// access runs inside one atomic event, modeling the cluster's atomic
/// shared memory.
class ClusterRegState {
 public:
  /// Installs (ts, v) if newer than the current record.
  void update_if_newer(const RegTimestamp& ts, std::uint64_t v) {
    if (latest_.ts < ts) latest_ = RegRecord{ts, v};
  }
  [[nodiscard]] const RegRecord& latest() const { return latest_; }

 private:
  RegRecord latest_;  // initial value: ts (0,-1), value 0
};

/// One process of the register emulation: issues client operations
/// (write/read) and serves queries/stores for everyone else.
class RegisterProcess {
 public:
  /// Called when an operation completes. For reads, `value` is the result;
  /// for writes it echoes the written value. `ts` is the operation's
  /// linearization timestamp.
  using OpCallback =
      std::function<void(ProcId self, std::uint64_t value, RegTimestamp ts)>;

  /// `cluster_state` must be the shared record of this process's cluster.
  RegisterProcess(ProcId self, const ClusterLayout& layout, INetwork& net,
                  ClusterRegState& cluster_state);

  RegisterProcess(const RegisterProcess&) = delete;
  RegisterProcess& operator=(const RegisterProcess&) = delete;

  /// Starts a write of `v`; `done` fires when the write is linearized.
  /// At most one operation may be in flight per process.
  void write(std::uint64_t v, OpCallback done);

  /// Starts a read; `done` fires with the read value.
  void read(OpCallback done);

  /// Runtime delivery hook.
  void on_message(ProcId from, const Message& m);

  [[nodiscard]] bool op_in_flight() const { return op_.has_value(); }

  /// Operations completed by this process (for harness bookkeeping).
  [[nodiscard]] std::uint64_t ops_completed() const { return completed_; }

 private:
  enum class OpKind { Write, Read };
  enum class Stage { Query, Store };

  struct PendingOp {
    OpKind kind;
    Stage stage = Stage::Query;
    InstanceId id = 0;
    std::uint64_t write_value = 0;  // writes
    RegRecord best;                 // max record seen in the query stage
    DynamicBitset clusters_heard;   // cluster closure of acks
    OpCallback done;
  };

  void begin_stage();
  [[nodiscard]] bool coverage_met(const DynamicBitset& clusters) const;
  void handle_ack(ProcId from, const Message& m);

  ProcId self_;
  const ClusterLayout& layout_;
  INetwork& net_;
  ClusterRegState& cluster_state_;
  InstanceId next_op_id_;
  std::optional<PendingOp> op_;
  std::uint64_t completed_ = 0;
};

}  // namespace hyco
