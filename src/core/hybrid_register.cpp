#include "core/hybrid_register.h"

#include "util/assert.h"

namespace hyco {

RegisterProcess::RegisterProcess(ProcId self, const ClusterLayout& layout,
                                 INetwork& net,
                                 ClusterRegState& cluster_state)
    : self_(self),
      layout_(layout),
      net_(net),
      cluster_state_(cluster_state),
      // Disjoint op-id spaces per process so concurrent ops never collide.
      next_op_id_(self) {}

bool RegisterProcess::coverage_met(const DynamicBitset& clusters) const {
  ProcId covered = 0;
  for (const auto x : clusters.to_indices()) {
    covered += layout_.cluster_size(static_cast<ClusterId>(x));
  }
  return 2 * covered > layout_.n();
}

void RegisterProcess::write(std::uint64_t v, OpCallback done) {
  HYCO_CHECK_MSG(!op_.has_value(), "operation already in flight on p" << self_);
  PendingOp op{OpKind::Write, Stage::Query, next_op_id_, v, {},
               DynamicBitset(static_cast<std::size_t>(layout_.m())),
               std::move(done)};
  next_op_id_ += 2 * layout_.n();
  op_ = std::move(op);
  begin_stage();
}

void RegisterProcess::read(OpCallback done) {
  HYCO_CHECK_MSG(!op_.has_value(), "operation already in flight on p" << self_);
  PendingOp op{OpKind::Read, Stage::Query, next_op_id_, 0, {},
               DynamicBitset(static_cast<std::size_t>(layout_.m())),
               std::move(done)};
  next_op_id_ += 2 * layout_.n();
  op_ = std::move(op);
  begin_stage();
}

void RegisterProcess::begin_stage() {
  PendingOp& op = *op_;
  op.clusters_heard.clear_all();
  if (op.stage == Stage::Query) {
    Message q;
    q.kind = MsgKind::RegQuery;
    q.instance = op.id;
    net_.broadcast(self_, q);
  } else {
    Message s;
    s.kind = MsgKind::RegStore;
    s.instance = op.id;
    s.round = static_cast<Round>(op.best.ts.seq);
    s.origin = op.best.ts.writer;
    s.value = op.best.value;
    net_.broadcast(self_, s);
  }
}

void RegisterProcess::on_message(ProcId from, const Message& m) {
  switch (m.kind) {
    case MsgKind::RegQuery: {
      // Serve on behalf of the whole cluster: answer with the CLUSTER's
      // latest record (one for all).
      const RegRecord& rec = cluster_state_.latest();
      Message ack;
      ack.kind = MsgKind::RegAck;
      ack.instance = m.instance;
      ack.round = static_cast<Round>(rec.ts.seq);
      ack.origin = rec.ts.writer;
      ack.value = rec.value;
      net_.send(self_, from, ack);
      return;
    }
    case MsgKind::RegStore: {
      // Install into the cluster's shared record, then ack.
      cluster_state_.update_if_newer(
          RegTimestamp{m.round, m.origin}, m.value);
      Message ack;
      ack.kind = MsgKind::RegAck;
      ack.instance = m.instance;
      ack.round = m.round;
      ack.origin = m.origin;
      ack.value = m.value;
      net_.send(self_, from, ack);
      return;
    }
    case MsgKind::RegAck:
      handle_ack(from, m);
      return;
    default:
      return;  // consensus traffic on a shared network: not ours
  }
}

void RegisterProcess::handle_ack(ProcId from, const Message& m) {
  if (!op_.has_value() || m.instance != op_->id) return;  // stale ack
  PendingOp& op = *op_;

  if (op.stage == Stage::Query) {
    const RegTimestamp ts{m.round, m.origin};
    if (op.best.ts < ts) op.best = RegRecord{ts, m.value};
  }
  op.clusters_heard.set(
      static_cast<std::size_t>(layout_.cluster_of(from)));
  if (!coverage_met(op.clusters_heard)) return;

  if (op.stage == Stage::Query) {
    // Query stage complete: fix the record to store, then store it.
    if (op.kind == OpKind::Write) {
      op.best = RegRecord{RegTimestamp{op.best.ts.seq + 1, self_},
                          op.write_value};
    }
    // Reads write back the max record they saw (new-old inversion guard).
    op.stage = Stage::Store;
    op.id += 1;  // sub-id for the second stage; op ids advance by 2n per
                 // operation, so +0/+1 stage ids never collide across ops
    begin_stage();
    return;
  }

  // Store stage complete: the operation is linearized.
  const RegRecord result = op.best;
  OpCallback done = std::move(op.done);
  ++completed_;
  op_.reset();
  if (done) done(self_, result.value, result.ts);
}

}  // namespace hyco
