#include "core/cluster_layout.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/assert.h"

namespace hyco {

ClusterLayout::ClusterLayout(std::vector<std::vector<ProcId>> clusters)
    : clusters_(std::move(clusters)) {
  HYCO_CHECK_MSG(!clusters_.empty(), "layout needs at least one cluster");
  ProcId count = 0;
  for (auto& c : clusters_) {
    HYCO_CHECK_MSG(!c.empty(), "clusters must be non-empty");
    std::sort(c.begin(), c.end());
    count += static_cast<ProcId>(c.size());
  }
  n_ = count;
  cluster_of_.assign(static_cast<std::size_t>(n_), -1);
  for (ClusterId x = 0; x < m(); ++x) {
    for (const ProcId p : clusters_[static_cast<std::size_t>(x)]) {
      HYCO_CHECK_MSG(p >= 0 && p < n_, "process id " << p << " out of range");
      HYCO_CHECK_MSG(cluster_of_[static_cast<std::size_t>(p)] == -1,
                     "process " << p << " appears in two clusters");
      cluster_of_[static_cast<std::size_t>(p)] = x;
    }
  }
  // Partition: every id in [0, n) covered exactly once (pigeonhole: n ids,
  // n slots, no duplicates — already guaranteed by the two checks above).
  member_sets_.reserve(clusters_.size());
  for (const auto& c : clusters_) {
    DynamicBitset set(static_cast<std::size_t>(n_));
    for (const ProcId p : c) set.set(static_cast<std::size_t>(p));
    member_sets_.push_back(std::move(set));
  }
}

ClusterLayout ClusterLayout::singletons(ProcId n) {
  HYCO_CHECK_MSG(n >= 1, "need at least one process");
  std::vector<std::vector<ProcId>> cs;
  cs.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) cs.push_back({p});
  return ClusterLayout(std::move(cs));
}

ClusterLayout ClusterLayout::single(ProcId n) {
  HYCO_CHECK_MSG(n >= 1, "need at least one process");
  std::vector<ProcId> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  return ClusterLayout({std::move(all)});
}

ClusterLayout ClusterLayout::from_sizes(const std::vector<ProcId>& sizes) {
  std::vector<std::vector<ProcId>> cs;
  cs.reserve(sizes.size());
  ProcId next = 0;
  for (const ProcId s : sizes) {
    HYCO_CHECK_MSG(s >= 1, "cluster sizes must be positive");
    std::vector<ProcId> c(static_cast<std::size_t>(s));
    std::iota(c.begin(), c.end(), next);
    next += s;
    cs.push_back(std::move(c));
  }
  return ClusterLayout(std::move(cs));
}

ClusterLayout ClusterLayout::even(ProcId n, ClusterId m) {
  HYCO_CHECK_MSG(m >= 1 && m <= n, "need 1 <= m <= n (got m=" << m
                                                              << ", n=" << n << ")");
  std::vector<ProcId> sizes(static_cast<std::size_t>(m),
                            n / static_cast<ProcId>(m));
  for (ClusterId i = 0; i < n % m; ++i) ++sizes[static_cast<std::size_t>(i)];
  return from_sizes(sizes);
}

ClusterLayout ClusterLayout::fig1_left() { return from_sizes({2, 3, 2}); }

ClusterLayout ClusterLayout::fig1_right() { return from_sizes({1, 4, 2}); }

ClusterId ClusterLayout::cluster_of(ProcId p) const {
  HYCO_CHECK_MSG(p >= 0 && p < n_, "cluster_of(" << p << ") out of range");
  return cluster_of_[static_cast<std::size_t>(p)];
}

const std::vector<ProcId>& ClusterLayout::members(ClusterId x) const {
  HYCO_CHECK_MSG(x >= 0 && x < m(), "cluster " << x << " out of range");
  return clusters_[static_cast<std::size_t>(x)];
}

ProcId ClusterLayout::cluster_size(ClusterId x) const {
  return static_cast<ProcId>(members(x).size());
}

const DynamicBitset& ClusterLayout::member_set(ClusterId x) const {
  HYCO_CHECK_MSG(x >= 0 && x < m(), "cluster " << x << " out of range");
  return member_sets_[static_cast<std::size_t>(x)];
}

bool ClusterLayout::has_majority_cluster() const {
  for (ClusterId x = 0; x < m(); ++x) {
    if (2 * cluster_size(x) > n_) return true;
  }
  return false;
}

ProcId ClusterLayout::live_coverage(const DynamicBitset& live) const {
  HYCO_CHECK_MSG(live.size() == static_cast<std::size_t>(n_),
                 "live set universe mismatch");
  ProcId covered = 0;
  for (ClusterId x = 0; x < m(); ++x) {
    if (member_sets_[static_cast<std::size_t>(x)].intersects(live)) {
      covered += cluster_size(x);
    }
  }
  return covered;
}

bool ClusterLayout::covering_set_alive(const DynamicBitset& live) const {
  return 2 * live_coverage(live) > n_;
}

std::string ClusterLayout::to_string() const {
  std::ostringstream os;
  for (ClusterId x = 0; x < m(); ++x) {
    if (x) os << ',';
    os << '{';
    const auto& c = members(x);
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (i) os << ',';
      os << c[i];
    }
    os << '}';
  }
  return os.str();
}

}  // namespace hyco
