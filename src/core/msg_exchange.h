// Algorithm 1 — the msg_exchange(r, ph, est) communication pattern.
//
// The heart of the "One for All and All for One" idea: when p_i receives a
// PHASE(r, ph, v) message from p_j in cluster P[x], it credits v to EVERY
// process of P[x] (supporters_i[v] ∪= cluster(j)), because the cluster-local
// consensus objects guarantee no two members of a cluster broadcast
// different values in the same (r, ph). The wait predicate is
//     |supporters_i[a] ∪ supporters_i[b]| > n/2,
// i.e. the clusters heard from must cover a majority of processes — crashed
// members included.
//
// Per the paper, (a, b) = (0, 1) in phase 1 (and in every round of
// Algorithm 3), and (a, b) = (0-or-1, ⊥) in phase 2, where the binary value
// is defined dynamically by the messages received. We track all three
// supporter sets; the phase-2 predicate counts the union over all values
// seen, which coincides with the paper's definition whenever the WA1
// invariant holds (the invariant checker verifies WA1 independently).
#pragma once

#include <array>
#include <vector>

#include "core/cluster_layout.h"
#include "core/types.h"
#include "net/network.h"

namespace hyco {

/// One process's reusable engine for the msg_exchange pattern. begin() both
/// broadcasts PHASE(r, ph, est) and resets the supporter sets; credit() folds
/// in one received message and reports whether the wait predicate holds.
class MsgExchange {
 public:
  MsgExchange(const ClusterLayout& layout, INetwork& net, ProcId self);

  /// Starts the pattern for (r, ph): broadcasts the PHASE message (line 3)
  /// and clears the supporter sets (line 2). The caller then feeds buffered
  /// and future messages through credit().
  void begin(Round r, Phase ph, Estimate est);

  /// Folds in a PHASE(round(), phase(), value) message from `from`
  /// (lines 5-6). Returns true if the wait predicate (line 7) now holds.
  /// Precondition: the message matches the active (r, ph).
  bool credit(ProcId from, Estimate value);

  /// The wait predicate of line 7: credited clusters cover > n/2 processes.
  [[nodiscard]] bool satisfied() const;

  /// |supporters[v]| — processes supporting v under cluster closure.
  [[nodiscard]] ProcId support(Estimate v) const;

  /// Distinct values with non-empty supporter sets, in index order.
  [[nodiscard]] std::vector<Estimate> values_received() const;

  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] Phase phase() const { return phase_; }
  [[nodiscard]] bool active() const { return active_; }

  /// The estimate this process broadcast in the active exchange (what a
  /// recovered process must retransmit).
  [[nodiscard]] Estimate value() const { return est_; }

  /// Rebroadcasts the active exchange's PHASE message (crash-recovery
  /// retransmission). Crediting is idempotent — supporter sets are unions
  /// of clusters — so peers that already saw the original are unaffected.
  void retransmit();

  /// Number of begin() calls (== phases entered); for instrumentation.
  [[nodiscard]] std::uint64_t exchanges_started() const { return begun_; }

 private:
  const ClusterLayout& layout_;
  INetwork& net_;
  ProcId self_;

  Round round_ = 0;
  Phase phase_ = Phase::One;
  Estimate est_ = Estimate::Bot;
  bool active_ = false;
  std::uint64_t begun_ = 0;

  // supporters[v], kept as sets of *clusters* (they are always unions of
  // whole clusters; this is equivalent to the paper's process sets and
  // cheaper). Index 2 is ⊥.
  std::array<DynamicBitset, 3> supporter_clusters_;
};

}  // namespace hyco
