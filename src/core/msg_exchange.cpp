#include "core/msg_exchange.h"

#include "util/assert.h"

namespace hyco {

MsgExchange::MsgExchange(const ClusterLayout& layout, INetwork& net,
                         ProcId self)
    : layout_(layout), net_(net), self_(self) {
  for (auto& s : supporter_clusters_) {
    s = DynamicBitset(static_cast<std::size_t>(layout_.m()));
  }
}

void MsgExchange::begin(Round r, Phase ph, Estimate est) {
  HYCO_CHECK_MSG(r >= 1, "rounds start at 1");
  round_ = r;
  phase_ = ph;
  est_ = est;
  active_ = true;
  ++begun_;
  for (auto& s : supporter_clusters_) s.clear_all();
  // Line 3: broadcast (r, ph, est) to everyone, self included.
  net_.broadcast(self_, Message::phase_msg(r, ph, est));
}

void MsgExchange::retransmit() {
  HYCO_CHECK_MSG(active_, "retransmit() outside an active exchange");
  net_.broadcast(self_, Message::phase_msg(round_, phase_, est_));
}

bool MsgExchange::credit(ProcId from, Estimate value) {
  HYCO_CHECK_MSG(active_, "credit() outside an active exchange");
  // Lines 5-6: supporters[v] ∪= cluster(j) — the one-for-all closure.
  const ClusterId x = layout_.cluster_of(from);
  supporter_clusters_[estimate_index(value)].set(static_cast<std::size_t>(x));
  return satisfied();
}

bool MsgExchange::satisfied() const {
  // Line 7. Phase 1 (and Algorithm 3): union of the 0- and 1-supporters.
  // Phase 2: union over the values actually seen ({0 or 1} and ⊥).
  DynamicBitset u = supporter_clusters_[0] | supporter_clusters_[1];
  if (phase_ == Phase::Two) {
    u |= supporter_clusters_[2];
  }
  ProcId covered = 0;
  for (const auto x : u.to_indices()) {
    covered += layout_.cluster_size(static_cast<ClusterId>(x));
  }
  return 2 * covered > layout_.n();
}

ProcId MsgExchange::support(Estimate v) const {
  ProcId covered = 0;
  for (const auto x : supporter_clusters_[estimate_index(v)].to_indices()) {
    covered += layout_.cluster_size(static_cast<ClusterId>(x));
  }
  return covered;
}

std::vector<Estimate> MsgExchange::values_received() const {
  std::vector<Estimate> vals;
  for (const Estimate e : kAllEstimates) {
    if (supporter_clusters_[estimate_index(e)].any()) vals.push_back(e);
  }
  return vals;
}

}  // namespace hyco
