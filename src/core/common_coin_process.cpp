#include "core/common_coin_process.h"

#include "util/assert.h"

namespace hyco {

CommonCoinProcess::CommonCoinProcess(ProcId self, const ClusterLayout& layout,
                                     INetwork& net, ClusterMemory& memory,
                                     ICommonCoin& coin,
                                     InvariantChecker* checker,
                                     Round max_rounds)
    : ProcessBase(self, layout, net, checker, max_rounds),
      memory_(memory),
      coin_(coin) {
  HYCO_CHECK_MSG(memory.cluster() == layout.cluster_of(self),
                 "p" << self << " wired to MEM_" << memory.cluster()
                     << " but belongs to P[" << layout.cluster_of(self)
                     << ']');
}

void CommonCoinProcess::enter_round() {
  if (round_ == 0) est_ = proposal_;  // line 1: est ← v_i
  if (maybe_park()) return;
  ++round_;
  ++stats_.rounds_entered;
  HYCO_CHECK_MSG(is_binary(est_), "entering round with est=⊥ on p" << self_);
  // Line 4: locally agree on est inside the cluster (single-phase array).
  ++stats_.cons_invocations;
  est_ = memory_.cons(round_).propose(self_, est_);
  if (checker_ != nullptr) checker_->on_est1(self_, round_, est_);
  // Line 5: exchange among all clusters; the simplified pattern uses
  // (a, b) = (0, 1), i.e. Phase::One semantics.
  begin_exchange(round_, Phase::One, est_);
}

void CommonCoinProcess::on_exchange_progress() {
  while (!decided() && !parked() && exch_.active() && exch_.satisfied()) {
    complete_round();
  }
}

void CommonCoinProcess::complete_round() {
  // Line 6: the round's common bit (same for every process).
  ++stats_.coin_flips;
  const int s = coin_.bit(round_);

  // Line 7: is some estimate supported by a majority (cluster closure)?
  Estimate v = Estimate::Bot;
  for (const Estimate cand : {Estimate::Zero, Estimate::One}) {
    if (2 * exch_.support(cand) > layout_.n()) {
      v = cand;
      break;
    }
  }

  if (is_binary(v)) {
    est_ = v;  // line 8
    if (estimate_to_bit(v) == s) {
      decide(v);  // line 9: broadcast DECIDE(v); return v
      return;
    }
  } else {
    est_ = estimate_from_bit(s);  // line 10
  }
  enter_round();
}

}  // namespace hyco
