#include "core/total_order_runner.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "sim/simulator.h"
#include "util/assert.h"

namespace hyco {

TobRunResult run_tob(const TobRunConfig& cfg) {
  const ProcId n = cfg.layout.n();
  Simulator sim(cfg.seed);
  sim.reserve_all_to_all(n);
  CrashPlan plan = cfg.crashes;
  if (plan.specs.empty()) plan = CrashPlan::none(static_cast<std::size_t>(n));
  CrashTracker tracker(static_cast<std::size_t>(n));
  auto delays = make_delay_model(cfg.delays);
  SimNetwork net(sim, *delays, tracker, n, &plan, nullptr);

  MemoryPool pool(n, ConsensusImpl::Cas);
  CommonCoin coin(mix64(cfg.seed, 0xC01C03));

  std::vector<std::unique_ptr<TobProcess>> procs;
  procs.reserve(static_cast<std::size_t>(n));
  for (ProcId p = 0; p < n; ++p) {
    procs.push_back(std::make_unique<TobProcess>(
        p, cfg.layout, net, pool, coin, cfg.max_rounds_per_bit));
  }
  net.set_deliver([&](ProcId to, ProcId from, const Message& m) {
    procs[static_cast<std::size_t>(to)]->on_message(from, m);
  });

  for (ProcId p = 0; p < n; ++p) {
    const CrashSpec& spec = plan.specs[static_cast<std::size_t>(p)];
    if (spec.kind == CrashSpec::Kind::AtTime) {
      if (spec.time <= 0) {
        tracker.crash(p, 0);
      } else {
        sim.schedule_at(spec.time, [&tracker, p, t = spec.time] {
          tracker.crash(p, t);
        });
      }
    }
  }
  for (const TobSubmission& s : cfg.submissions) {
    HYCO_CHECK_MSG(s.payload != TobProcess::kNoop, "payload 0 reserved");
    sim.schedule_at(s.at, [&, s] {
      if (tracker.is_crashed(s.proc)) return;
      procs[static_cast<std::size_t>(s.proc)]->submit(s.payload);
    });
  }

  TobRunResult result;
  sim.run(cfg.max_events);
  result.events = sim.events_executed();
  result.end_time = sim.now();
  result.crashed = tracker.crashed_count();
  result.net = net.stats();

  for (ProcId p = 0; p < n; ++p) {
    result.logs.push_back(procs[static_cast<std::size_t>(p)]->delivered());
  }

  // Prefix agreement across every pair of logs.
  for (ProcId a = 0; a < n; ++a) {
    for (ProcId b = a + 1; b < n; ++b) {
      const auto& la = result.logs[static_cast<std::size_t>(a)];
      const auto& lb = result.logs[static_cast<std::size_t>(b)];
      const std::size_t k = std::min(la.size(), lb.size());
      for (std::size_t i = 0; i < k; ++i) {
        if (la[i] != lb[i]) {
          result.prefix_agreement = false;
          std::ostringstream os;
          os << "log divergence at slot " << i << ": p" << a << " has "
             << la[i] << ", p" << b << " has " << lb[i];
          result.violations.push_back(os.str());
          break;
        }
      }
    }
  }

  // Every payload submitted by a correct process must be delivered by
  // every correct process.
  for (const TobSubmission& s : cfg.submissions) {
    if (tracker.is_crashed(s.proc)) continue;
    for (ProcId p = 0; p < n; ++p) {
      if (tracker.is_crashed(p)) continue;
      const auto& log = result.logs[static_cast<std::size_t>(p)];
      if (std::find(log.begin(), log.end(), s.payload) == log.end()) {
        result.all_delivered = false;
        std::ostringstream os;
        os << "payload " << s.payload << " (from p" << s.proc
           << ") missing in p" << p << "'s log";
        result.violations.push_back(os.str());
      }
    }
  }
  return result;
}

}  // namespace hyco
