#include "core/invariant_checker.h"

#include <algorithm>
#include <sstream>

#include "util/assert.h"
#include "util/log.h"

namespace hyco {

InvariantChecker::InvariantChecker(const ClusterLayout& layout)
    : layout_(layout) {}

void InvariantChecker::set_inputs(const std::vector<Estimate>& inputs) {
  HYCO_CHECK_MSG(inputs.size() == static_cast<std::size_t>(layout_.n()),
                 "inputs size mismatch");
  for (const Estimate e : inputs) {
    HYCO_CHECK_MSG(is_binary(e), "proposals must be binary");
  }
  inputs_ = inputs;
}

void InvariantChecker::violate(const std::string& what) {
  HYCO_ERROR("invariant violation: " << what);
  violations_.push_back(what);
}

void InvariantChecker::check_cluster_consistent(
    const char* tag, ProcId p, Round r, Estimate v,
    std::map<std::pair<Round, ClusterId>, Estimate>& seen) {
  const ClusterId x = layout_.cluster_of(p);
  const auto key = std::make_pair(r, x);
  const auto it = seen.find(key);
  if (it == seen.end()) {
    seen.emplace(key, v);
  } else if (it->second != v) {
    std::ostringstream os;
    os << tag << " cluster-inconsistency: p" << p << " in P[" << x
       << "] has " << v << " but cluster already agreed " << it->second
       << " at round " << r;
    violate(os.str());
  }
}

void InvariantChecker::on_est1(ProcId p, Round r, Estimate v) {
  if (!is_binary(v)) {
    std::ostringstream os;
    os << "est1 of p" << p << " at round " << r << " is ⊥";
    violate(os.str());
  }
  check_cluster_consistent("est1", p, r, v, est1_by_cluster_);
}

void InvariantChecker::on_est2(ProcId p, Round r, Estimate v) {
  check_cluster_consistent("est2", p, r, v, est2_by_cluster_);
  if (!is_binary(v)) return;
  // WA1: all non-⊥ est2 values of a round are equal.
  const auto it = est2_nonbot_.find(r);
  if (it == est2_nonbot_.end()) {
    est2_nonbot_.emplace(r, v);
  } else if (it->second != v) {
    std::ostringstream os;
    os << "WA1 violated at round " << r << ": est2 values " << it->second
       << " and " << v << " (p" << p << ')';
    violate(os.str());
  }
}

void InvariantChecker::on_rec(ProcId p, Round r,
                              const std::vector<Estimate>& rec) {
  const bool has0 = std::find(rec.begin(), rec.end(), Estimate::Zero) != rec.end();
  const bool has1 = std::find(rec.begin(), rec.end(), Estimate::One) != rec.end();
  const bool hasb = std::find(rec.begin(), rec.end(), Estimate::Bot) != rec.end();
  if (has0 && has1) {
    std::ostringstream os;
    os << "rec of p" << p << " at round " << r
       << " contains both 0 and 1 (WA1 consequence violated)";
    violate(os.str());
  }
  if (rec.empty()) {
    std::ostringstream os;
    os << "rec of p" << p << " at round " << r << " is empty";
    violate(os.str());
  }
  const bool singleton_value = (has0 || has1) && !hasb;
  const bool singleton_bot = hasb && !has0 && !has1;
  // WA2: {v} and {⊥} mutually exclusive within a round. Report once, at the
  // moment the conflicting singleton appears.
  if (singleton_value && rec_singleton_bot_.count(r) > 0) {
    std::ostringstream os;
    os << "WA2 violated at round " << r << ": p" << p
       << " has rec={v} while p" << rec_singleton_bot_.at(r)
       << " has rec={⊥}";
    violate(os.str());
  }
  if (singleton_bot && rec_singleton_value_.count(r) > 0) {
    std::ostringstream os;
    os << "WA2 violated at round " << r << ": p"
       << rec_singleton_value_.at(r) << " has rec={v} while p" << p
       << " has rec={⊥}";
    violate(os.str());
  }
  if (singleton_value) rec_singleton_value_.emplace(r, p);
  if (singleton_bot) rec_singleton_bot_.emplace(r, p);
}

void InvariantChecker::on_decide(ProcId p, Round r, Estimate v) {
  if (!is_binary(v)) {
    std::ostringstream os;
    os << "p" << p << " decided ⊥ at round " << r;
    violate(os.str());
    return;
  }
  if (!decided_.has_value()) {
    decided_ = v;
  } else if (*decided_ != v) {
    std::ostringstream os;
    os << "AGREEMENT violated: p" << p << " decided " << v
       << " but an earlier decision was " << *decided_;
    violate(os.str());
  }
  if (!inputs_.empty()) {
    const bool proposed =
        std::find(inputs_.begin(), inputs_.end(), v) != inputs_.end();
    if (!proposed) {
      std::ostringstream os;
      os << "VALIDITY violated: decided " << v << " was never proposed";
      violate(os.str());
    }
  }
}

}  // namespace hyco
