// Common plumbing of the round-based consensus processes: message routing,
// buffering of early messages (asynchrony lets senders run ahead), DECIDE
// gossip, decision bookkeeping, and a max-round parking brake used by
// experiment harnesses (randomized termination is probability-1, not
// bounded).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "core/cluster_layout.h"
#include "core/consensus_process.h"
#include "core/invariant_checker.h"
#include "core/msg_exchange.h"
#include "core/types.h"
#include "net/network.h"

namespace hyco {

/// Event-driven skeleton of a round-based binary consensus process for the
/// hybrid model. Concrete algorithms (Algorithms 2 and 3) implement
/// enter_round() and on_exchange_progress().
class ProcessBase : public IConsensusProcess {
 public:
  /// `checker` may be nullptr (no invariant recording). `max_rounds` parks
  /// the process (stops advancing, still accepts DECIDE) when exceeded.
  ProcessBase(ProcId self, const ClusterLayout& layout, INetwork& net,
              InvariantChecker* checker, Round max_rounds);

  ProcessBase(const ProcessBase&) = delete;
  ProcessBase& operator=(const ProcessBase&) = delete;

  /// The paper's propose(v): records the proposal and enters round 1.
  void start(Estimate proposal) override;

  /// Runtime delivery hook for every message addressed to this process.
  void on_message(ProcId from, const Message& m) override;

  /// Crash-recovery rejoin: retransmits the active exchange's PHASE message
  /// (or re-gossips DECIDE when already decided). Peers answer with decide
  /// or catch-up replies (scenario assist), letting this process replay the
  /// history it missed and climb back to the frontier.
  void on_recover() override;

  /// Forgets the once-per-(peer, round, phase) reply bookkeeping for a
  /// rejoined peer — its copies may have been dropped while it was down,
  /// so catch-up replies to it must be allowed again. Each recovery resets
  /// the guard once, keeping total reply traffic bounded.
  void on_peer_recover(ProcId peer) override;

  void set_scenario_assist(bool on) override { assist_ = on; }

  void set_observer(obs::IRunObserver* o) override { obs_ = o; }

  [[nodiscard]] bool decided() const override {
    return decision_.has_value();
  }
  [[nodiscard]] std::optional<Estimate> decision() const override {
    return decision_;
  }
  [[nodiscard]] Round decision_round() const override {
    return decision_round_;
  }
  [[nodiscard]] Round current_round() const override { return round_; }
  [[nodiscard]] bool parked() const override { return parked_; }
  [[nodiscard]] const ProcessStats& stats() const override { return stats_; }
  [[nodiscard]] ProcId id() const { return self_; }

 protected:
  /// Advances to the next round: run the round's first cluster consensus,
  /// begin the exchange. Implementations must honor the max-round brake via
  /// maybe_park().
  virtual void enter_round() = 0;

  /// Called whenever the active exchange may have progressed (a message was
  /// credited, or a new exchange just began with a non-empty backlog).
  /// Implementations loop while the wait predicate holds.
  virtual void on_exchange_progress() = 0;

  /// Starts msg_exchange(r, ph, est) and replays buffered messages for
  /// (r, ph).
  void begin_exchange(Round r, Phase ph, Estimate est);

  /// Decides v: notifies the checker, broadcasts DECIDE(v) (lines 12/17 of
  /// Algorithm 2), and marks this process decided.
  void decide(Estimate v);

  /// Returns true (and parks) if the next round would exceed max_rounds.
  bool maybe_park();

  ProcId self_;
  const ClusterLayout& layout_;
  INetwork& net_;
  InvariantChecker* checker_;
  Round max_rounds_;
  MsgExchange exch_;
  Round round_ = 0;
  Estimate proposal_ = Estimate::Bot;  ///< the value passed to start()
  ProcessStats stats_;
  obs::IRunObserver* obs_ = nullptr;  ///< optional, not owned

 private:
  /// Scenario assist: answer a PHASE message from `from` by retransmitting
  /// this process's own message of that (round, phase), if it ever sent
  /// one — at most once per (peer, round, phase), so the extra traffic is
  /// bounded and two processes can never bounce replies forever.
  void maybe_catchup_reply(ProcId from, const Message& m);

  using BacklogKey = std::pair<Round, int>;
  std::map<BacklogKey, std::vector<std::pair<ProcId, Estimate>>> backlog_;
  std::optional<Estimate> decision_;
  Round decision_round_ = 0;
  bool parked_ = false;
  bool started_ = false;
  bool assist_ = false;
  /// What this process broadcast per (round, phase); recorded only when
  /// scenario assist is on (feeds catch-up replies).
  std::map<BacklogKey, Estimate> sent_history_;
  std::set<std::tuple<ProcId, Round, int>> catchup_sent_;
};

}  // namespace hyco
