// Simulation driver for the total-order broadcast extension.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster_layout.h"
#include "core/total_order.h"
#include "net/delay_model.h"
#include "net/network.h"
#include "sim/crash.h"

namespace hyco {

/// One scheduled client submission.
struct TobSubmission {
  ProcId proc = 0;
  SimTime at = 0;
  std::uint64_t payload = 0;  ///< nonzero, unique per run
};

/// Description of one total-order broadcast run.
struct TobRunConfig {
  explicit TobRunConfig(ClusterLayout l) : layout(std::move(l)) {}

  ClusterLayout layout;
  std::vector<TobSubmission> submissions;
  std::uint64_t seed = 1;
  DelayConfig delays = DelayConfig::uniform(50, 150);
  CrashPlan crashes;
  Round max_rounds_per_bit = 2000;
  std::uint64_t max_events = 800'000'000;
};

/// Outcome of a total-order broadcast run.
struct TobRunResult {
  std::vector<std::vector<std::uint64_t>> logs;  ///< per-process delivery log
  bool prefix_agreement = true;  ///< every pair of logs: one prefixes the other
  bool all_delivered = true;     ///< correct procs delivered every payload
                                 ///< submitted by a correct proc
  std::vector<std::string> violations;
  NetStats net;
  std::uint64_t events = 0;
  SimTime end_time = 0;
  std::size_t crashed = 0;

  [[nodiscard]] bool success() const {
    return prefix_agreement && all_delivered;
  }
};

/// Builds and runs one total-order broadcast simulation.
TobRunResult run_tob(const TobRunConfig& cfg);

}  // namespace hyco
