// Algorithm 3 — common-coin binary consensus for the hybrid communication
// model (the paper's extension of the crash-failure version of the
// Friedman–Mostéfaoui–Raynal Byzantine consensus, per Raynal 2018).
//
// Per round r (a single phase):
//   est ← CONS_x[r].propose(est)            (cluster-local agree, line 4)
//   msg_exchange(r, est)                     (Alg. 1 with (a,b) = (0,1))
//   s  ← common_coin()                       (the round's common bit, line 6)
//   if some v has |supporters[v]| > n/2:     (lines 7-9)
//       est ← v;  if s == v: broadcast DECIDE(v); return v
//   else est ← s                             (line 10)
//
// Expected termination: once all live processes hold the same estimate v,
// each further round decides with probability 1/2 (coin matches v), so the
// expected number of additional rounds is 2, independent of n — the claim
// measured by experiment T-ROUNDS.
#pragma once

#include "coin/coin.h"
#include "core/process_base.h"
#include "shm/cluster_memory.h"

namespace hyco {

/// One process of Algorithm 3.
class CommonCoinProcess final : public ProcessBase {
 public:
  /// `coin` is shared by all processes of the run (it is the common coin).
  CommonCoinProcess(ProcId self, const ClusterLayout& layout, INetwork& net,
                    ClusterMemory& memory, ICommonCoin& coin,
                    InvariantChecker* checker, Round max_rounds);

  [[nodiscard]] Estimate est() const { return est_; }

 protected:
  void enter_round() override;
  void on_exchange_progress() override;

 private:
  void complete_round();

  ClusterMemory& memory_;
  ICommonCoin& coin_;
  Estimate est_ = Estimate::Bot;
};

}  // namespace hyco
